// Package cluster runs the paper's replicated data stores over real TCP
// connections. Each Node wraps one store.Replica behind a single-goroutine
// event loop — preserving the §2 single-threaded state-machine contract —
// and exchanges the replica's broadcast messages with its peers through a
// length-framed protocol (internal/wire) that provides reliable eventual
// delivery: per-peer unacked queues, cumulative acknowledgements,
// retransmission with exponential backoff, and reconnection on failure.
// Unlike the lossy schedules internal/sim can produce (see sim.ErrLossyRun),
// the transport makes Definition 3 hold on a network that drops and resets
// connections, so quiescence still owes convergence (Lemma 3).
//
// Every do, send, and receive event is recorded locally with a Lamport
// timestamp. After a run, the per-node histories merge into a concrete
// execution (MergeHistories) and a derived abstract execution (BuildAudit)
// that replay through execution.CheckWellFormed, consistency.CheckCausal,
// and the §4 property checkers — the same audit pipeline the simulator
// applies in-process, now spanning processes and machines.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/livecheck"
	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/wire"
)

// ErrClosed is returned by operations on a node that has shut down.
var ErrClosed = errors.New("cluster: node closed")

// Config describes one node of a cluster.
type Config struct {
	// ID is this node's replica ID (0-based, unique in the cluster).
	ID model.ReplicaID
	// N is the cluster size.
	N int
	// Store builds the replica this node serves.
	Store store.Store
	// Listen is the TCP address to listen on ("127.0.0.1:0" for tests).
	Listen string
	// Peers maps peer replica IDs to their listen addresses. May be left
	// nil and supplied later via Connect (e.g. when addresses are only
	// known after every listener is up).
	Peers map[model.ReplicaID]string

	// Seed seeds the per-peer jitter streams (redial and retransmission
	// timing), split per (node, peer) with gen.SplitSeed: runs with the
	// same seed reproduce retransmission timing. Zero is a valid seed.
	Seed int64
	// Faults, when non-nil, is the shared in-process network emulator:
	// replication connections are wrapped on both the dial side (updates)
	// and the accept side (acks), so the emulator's partitions, cuts, and
	// per-link shaping windows apply to this node's links.
	Faults *fault.Netem
	// Restore, when non-nil, reloads a previous incarnation's recorded
	// history before serving: the replica state is rebuilt by replaying
	// the events, the Lamport clock and sequence counters resume where
	// they left off, and every past broadcast is re-offered to the peers
	// (receivers deduplicate by cumulative sequence number). This is the
	// rejoin half of a fail-stop crash whose durable state is the local
	// event log.
	Restore *History
	// Journal, when non-nil, is invoked on the event loop with each
	// do/send/receive event as it is appended to the local history, and
	// must make the event durable before returning (internal/durable
	// fsyncs a CRC-framed record). Because the call happens in the same
	// event-loop turn that records the event — before the update's
	// acknowledgement or the client's response leaves the node — an event
	// any peer holds an ack for is always in the journal. A Journal error
	// fail-stops the node: it suppresses the pending ack, refuses further
	// operations, and closes, because a replica that cannot persist must
	// not promise delivery. Events replayed via Restore are NOT
	// re-journaled (they came from the journal).
	Journal func(Event) error
	// Storage, when non-nil, supplies Journal and Restore for each
	// incarnation from durable per-node storage (mutually exclusive with
	// setting either directly): NewNode opens it before serving and closes
	// it after the event loop exits. The Supervisor threads it through
	// crash/restart directives, so chaos schedules exercise the on-disk
	// recovery path instead of handing histories through memory.
	Storage NodeStorage
	// Observer, when non-nil, receives transport-level chaos metrics
	// (retransmits, reconnects, dup/gap frames) from this node; the
	// supervisor additionally reports applied directives to it. All
	// Observer methods are nil-safe, so the field is threaded unguarded.
	Observer *fault.Observer
	// Tap, when non-nil, receives every event this node records — do,
	// send, receive — in the same event-loop turn that records it,
	// immediately after the journal (if any) accepted it, so the streamed
	// prefix never runs ahead of the durable log and a restart can never
	// regress the stream. The first argument is the recording shard's index
	// (always 0 on an unsharded node); per-shard event streams have
	// independent (Origin, Seq) domains, so a sharded consumer must keep
	// one checker per shard (livecheck.ShardSet). Events replayed via
	// Restore are not re-tapped (their first recording was); sends
	// re-minted during restore are new events and are. The callback runs on
	// the recording shard's event loop: it must return quickly and must not
	// call back into the node. Intended for internal/livecheck; the
	// Supervisor copies it into every restart incarnation like the rest of
	// the base config.
	Tap func(shard int, ev livecheck.Event)

	// Shards splits this node's keyspace across that many independent
	// event loops (default 1): a ShardRouter hashes each object key to one
	// shard, which owns its own store replica, Lamport clock, broadcast
	// sequence domain, recorded history, and (under Storage) its own
	// durable log in a shard-NNN subdirectory. Replication links multiplex
	// every shard over one connection (tShardBatch frames); all nodes of a
	// cluster must agree on the count, and links to peers announcing a
	// different count fail-stop. Sharded nodes require Storage (not direct
	// Journal/Restore/Tree) when durable, and do not support dynamic
	// membership (Join/Leave) yet.
	Shards int

	// Join, when non-nil, lists seed nodes (id → address) to join the
	// cluster through instead of (or in addition to) static Peers: NewNode
	// dials a seed, announces itself with a tJoin frame, adopts the seed's
	// membership view, catches up on missing history via Merkle
	// anti-entropy (pulling only the ranges its durable log lacks), and
	// only then enters normal replication. NewNode blocks until one seed
	// admits the node or a permanent refusal (divergent or lost history)
	// aborts it.
	Join map[model.ReplicaID]string
	// Epoch is this incarnation's membership epoch. Leave/rejoin cycles
	// need strictly increasing epochs; a joiner discovering a record of
	// itself at an equal or higher epoch bumps past it automatically, so
	// callers can normally leave this zero.
	Epoch uint64
	// GossipInterval paces the membership gossip loop (default 200ms).
	// Gossip only runs once the node is membership-dynamic: it joined via
	// Join, was asked to Leave, or heard a tJoin/tGossip frame. A static
	// cluster never gossips.
	GossipInterval time.Duration
	// SyncChunkDelay, when positive, makes this node pause between
	// anti-entropy range chunks it serves to a joiner — a test knob that
	// holds a sync open long enough to kill -9 the joiner mid-pull.
	SyncChunkDelay time.Duration
	// SyncWindow is the credit window this node requests when pulling
	// anti-entropy ranges as a joiner: how many unacked chunks the donor
	// may keep in flight toward it (default 8; 1 is the old stop-and-wait,
	// one round-trip per chunk). Every chunk is still applied and
	// journaled before its ack leaves, whatever the window — the window
	// pipelines the transfer, not the durability.
	SyncWindow int
	// Tree, when non-nil, is the Merkle forest the durable layer maintains
	// over this node's journaled events (durable.Log hashes each update in
	// the same turn that fsyncs it, and checkpoints the forest alongside
	// snapshots). When nil, the node builds and maintains its own in-memory
	// forest. Either way the forest backs digest exchange and range serving
	// for joining peers. Storage supplies it together with Journal/Restore.
	Tree *membership.Forest

	// Codec names this node's preferred wire codec ("json", "binary").
	// Empty means the store's own preference: stores implementing
	// store.PayloadCodec get the compact binary codec, the rest the JSON
	// fallback. The preference is an upper bound, not a demand — each
	// replication connection negotiates down to what both ends speak via
	// the hello exchange, so a cluster mixing codecs still interoperates.
	Codec string
	// BatchMax caps how many queued updates coalesce into one tBatch frame
	// on a binary-codec connection (default 64; negative disables batching
	// so every update travels as its own frame even on binary links).
	BatchMax int
	// Compress names this node's preferred per-frame compression for
	// large transfers ("flate", "none"; empty means flate). Like Codec it
	// is an offer, not a demand: each connection negotiates min-wins on
	// the hello/join exchange, so a peer that never offers (or a pre-v4
	// peer that cannot) pins the connection to none. Only bulk frames over
	// a size floor are ever compressed — see compress.go.
	Compress string

	// MaxFrame bounds replication and request frames (wire.DefaultMaxFrame
	// if zero); history transfers use the larger historyMaxFrame.
	MaxFrame int
	// DialTimeout bounds one TCP dial attempt.
	DialTimeout time.Duration
	// DialBackoffMin/Max bound the reconnect backoff.
	DialBackoffMin, DialBackoffMax time.Duration
	// RetransmitMin/Max bound the unacked-update retransmission backoff.
	RetransmitMin, RetransmitMax time.Duration
	// WriteTimeout bounds one frame write.
	WriteTimeout time.Duration
}

// NodeStorage provides per-incarnation durable storage for a node's
// recorded history (implemented by durable.Storage). Open is called once
// per incarnation and shard, before the node serves anything: journal
// persists each newly recorded event, restore is the recovered history of
// the previous incarnation (nil on first boot), and closeLog is invoked
// after the event loop has exited. shard/shards name which of the node's
// shard logs to open (0 of 1 for an unsharded node — implementations keep
// that case's layout byte-compatible with the pre-sharding one).
type NodeStorage interface {
	Open(id model.ReplicaID, n int, storeName string, shard, shards int) (journal func(Event) error, restore *History, tree *membership.Forest, closeLog func() error, err error)
}

func (c Config) withDefaults() Config {
	if c.MaxFrame == 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.BatchMax == 0 {
		c.BatchMax = 64
	}
	def := func(d *time.Duration, v time.Duration) {
		if *d == 0 {
			*d = v
		}
	}
	def(&c.DialTimeout, 2*time.Second)
	def(&c.DialBackoffMin, 50*time.Millisecond)
	def(&c.DialBackoffMax, 2*time.Second)
	def(&c.RetransmitMin, 200*time.Millisecond)
	def(&c.RetransmitMax, 2*time.Second)
	def(&c.WriteTimeout, 5*time.Second)
	def(&c.GossipInterval, 200*time.Millisecond)
	if c.SyncWindow == 0 {
		c.SyncWindow = 8
	}
	if c.SyncWindow < 1 {
		c.SyncWindow = 1
	}
	return c
}

// Stats is a point-in-time snapshot of a node's counters, served to
// clients over the wire (cmd/loadgen aggregates them into its report).
// The snapshot is coherent: every field is captured in one event-loop
// turn, so Events always equals Ops+Sends+Receives for a node that did
// not restore a prior history, and Quiesced agrees with the counters it
// is reported next to.
type Stats struct {
	Node        model.ReplicaID `json:"node"`
	Store       string          `json:"store"`
	Codec       string          `json:"codec,omitempty"`
	Ops         int64           `json:"ops"`
	Sends       int64           `json:"sends"`
	Receives    int64           `json:"receives"`
	Events      int64           `json:"events"`
	BytesOut    int64           `json:"bytes_out"`
	FramesOut   int64           `json:"frames_out,omitempty"`
	Retransmits int64           `json:"retransmits"`
	Reconnects  int64           `json:"reconnects"`
	DupFrames   int64           `json:"dup_frames"`
	GapFrames   int64           `json:"gap_frames"`
	Violations  int             `json:"violations"`
	Quiesced    bool            `json:"quiesced"`
	// Members is how many nodes this node's membership view currently
	// considers alive (including itself).
	Members int `json:"members,omitempty"`
	// SyncPulled counts updates this node applied from anti-entropy range
	// pulls while joining; SyncServed counts updates it shipped to joiners.
	// The pair is the byte-range evidence that a join moved only the
	// missing ranges, not the whole log.
	SyncPulled int64 `json:"sync_pulled,omitempty"`
	SyncServed int64 `json:"sync_served,omitempty"`
	// FailedLinks counts replication links that fail-stopped on a terminal
	// sender error (an update the frame limit can never carry). A non-zero
	// value means some peer will not converge through this node's direct
	// link; the node itself keeps serving.
	FailedLinks int64 `json:"failed_links,omitempty"`
	// Shards is the node's shard count; the per-shard slices below (one
	// entry per shard, indexed by shard) break the aggregate counters down
	// so load balance across shards is observable. Omitted (and nil) on
	// unsharded nodes for wire compatibility.
	Shards        int     `json:"shards,omitempty"`
	ShardOps      []int64 `json:"shard_ops,omitempty"`
	ShardSends    []int64 `json:"shard_sends,omitempty"`
	ShardReceives []int64 `json:"shard_receives,omitempty"`
	ShardEvents   []int64 `json:"shard_events,omitempty"`
}

// Node is one replica of a TCP-backed cluster. Its keyspace is split
// across cfg.Shards independent shards (see shard.go); an unsharded node
// is simply the one-shard case, whose wire behavior and on-disk layout are
// byte-compatible with the pre-sharding implementation.
type Node struct {
	cfg Config
	ln  net.Listener
	// codec is this node's resolved codec preference (cfg.Codec, else the
	// store's own declaration via store.PayloadCodec). Connections negotiate
	// down from it, never up.
	codec wire.Codec
	// comp is this node's resolved compression preference (from
	// cfg.Compress), negotiated down per connection the same way.
	comp uint64

	// router maps object keys to shards; shards holds one independent
	// event loop + replica + history per shard. Both are immutable after
	// NewNode.
	router *ShardRouter
	shards []*shard

	done chan struct{}
	wg   sync.WaitGroup

	// view is this node's convergent membership picture. Internally locked;
	// epoch is this incarnation's announcement epoch.
	view  *membership.View
	epoch atomic.Uint64
	// dynamic flips once membership is in play (Join config, Leave, or a
	// tJoin/tGossip heard) and starts the gossip loop; static clusters
	// never pay for it.
	dynamic    atomic.Bool
	syncPulled atomic.Int64
	syncServed atomic.Int64

	peerMu sync.Mutex
	peers  map[model.ReplicaID]*peerSender

	connMu sync.Mutex
	conns  map[net.Conn]struct{} // accepted connections

	bytesOut  atomic.Int64
	framesOut atomic.Int64
	dupFrames atomic.Int64
	gapFrames atomic.Int64

	// restored counts events replayed from restored histories at boot.
	restored int64

	closeOnce sync.Once
}

// s0 is the first shard — the whole node when unsharded. The membership
// subsystem (member.go) addresses it directly: dynamic membership is
// gated to single-shard nodes, where shard 0's history IS the node's.
func (n *Node) s0() *shard { return n.shards[0] }

// NewNode opens the listener, starts the per-shard event loops, and — if
// cfg.Peers is set — starts the replication links. It does not block on
// peers being up: links dial in the background and retry until the peer
// appears.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, errors.New("cluster: Config.Store is required")
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("cluster: invalid cluster size %d", cfg.N)
	}
	if int(cfg.ID) < 0 || int(cfg.ID) >= cfg.N {
		return nil, fmt.Errorf("cluster: node ID r%d outside cluster of %d", cfg.ID, cfg.N)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: invalid shard count %d", cfg.Shards)
	}
	if cfg.Shards > 1 {
		if cfg.Join != nil {
			return nil, errors.New("cluster: dynamic membership (Config.Join) requires Shards == 1")
		}
		if cfg.Journal != nil || cfg.Restore != nil || cfg.Tree != nil {
			return nil, errors.New("cluster: a sharded node takes durable state via Config.Storage, not Journal/Restore/Tree")
		}
	}
	codecName := cfg.Codec
	if codecName == "" {
		codecName = store.PreferredWireCodec(cfg.Store)
	}
	codec, ok := wire.CodecByName(codecName)
	if !ok {
		if cfg.Codec != "" {
			// An explicit misspelling is a config error; only a store's own
			// unknown declaration degrades silently to the fallback.
			return nil, fmt.Errorf("cluster: unknown wire codec %q (have %v)", cfg.Codec, wire.CodecNames())
		}
		codec = wire.JSON
	}
	comp := wire.CompFlate
	switch cfg.Compress {
	case "", "flate":
	case "none":
		comp = wire.CompNone
	default:
		return nil, fmt.Errorf("cluster: unknown compression %q (have none, flate)", cfg.Compress)
	}
	if cfg.Storage != nil && (cfg.Journal != nil || cfg.Restore != nil) {
		return nil, errors.New("cluster: Config.Storage is mutually exclusive with Journal/Restore")
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", cfg.Listen, err)
	}
	n := &Node{
		cfg:    cfg,
		ln:     ln,
		codec:  codec,
		comp:   comp,
		router: NewShardRouter(cfg.Shards),
		done:   make(chan struct{}),
		peers:  make(map[model.ReplicaID]*peerSender),
		conns:  make(map[net.Conn]struct{}),
		view:   membership.NewView(),
	}
	n.epoch.Store(cfg.Epoch)

	// closeAll unwinds a partially constructed node: listener plus every
	// shard log opened so far.
	closeAll := func() {
		ln.Close()
		for _, s := range n.shards {
			if s.closeJournal != nil {
				s.closeJournal()
			}
		}
	}
	n.shards = make([]*shard, cfg.Shards)
	for i := range n.shards {
		s := newShard(n, i)
		n.shards[i] = s
		restoreHist := cfg.Restore
		if cfg.Storage != nil {
			journal, restored, tree, closeLog, err := cfg.Storage.Open(cfg.ID, cfg.N, cfg.Store.Name(), i, cfg.Shards)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("cluster: open storage for r%d shard %d: %w", cfg.ID, i, err)
			}
			s.journal = journal
			s.closeJournal = closeLog
			s.tree = tree
			restoreHist = restored
		} else if i == 0 {
			s.journal = cfg.Journal
			s.tree = cfg.Tree
		}
		if s.tree == nil {
			s.tree = membership.NewForest(cfg.N)
			s.treeOwned = true
		}
		if restoreHist != nil {
			if err := s.restore(restoreHist); err != nil {
				closeAll()
				return nil, err
			}
			n.restored += int64(len(restoreHist.Events))
		}
	}

	// Seed the view: self plus every statically named peer, at epoch 0 —
	// later gossip (with real epochs) supersedes these placeholders.
	n.view.Merge(membership.Member{ID: int(cfg.ID), Addr: n.Addr(), Epoch: cfg.Epoch})
	for id, addr := range cfg.Peers {
		n.view.Merge(membership.Member{ID: int(id), Addr: addr})
	}
	n.wg.Add(1 + len(n.shards))
	for _, s := range n.shards {
		go s.loop()
	}
	go n.acceptLoop()
	if cfg.Join != nil {
		// Join owns link setup: it syncs, announces, and connects to every
		// alive member (statically named peers were merged into the view
		// above), so the static Connect below would only race it.
		if err := n.join(); err != nil {
			n.Close()
			return nil, err
		}
	} else if cfg.Peers != nil {
		if err := n.Connect(cfg.Peers); err != nil {
			n.Close()
			return nil, err
		}
	}
	return n, nil
}

// Restored returns how many events NewNode replayed from restored
// histories (all shards). Informational; stable after NewNode.
func (n *Node) Restored() int64 { return n.restored }

// Addr returns the listener's address (resolving ":0" ports).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID returns the node's replica ID.
func (n *Node) ID() model.ReplicaID { return n.cfg.ID }

// Connect starts replication links to the given peers. Each link dials in
// the background with backoff, so Connect succeeds even while peers are
// still coming up. A new link is offered this node's full live backlog —
// every broadcast it has ever recorded, not just what a restore left
// unacked — so a peer connected after boot still receives the post-boot
// writes. The offer is enqueued in one event-loop turn (no broadcast can
// interleave), and costs little on reconnects: the peer's v3 hello ack
// carries its delivered watermark, pruning the queue before the first
// send. Receivers deduplicate by cumulative seq regardless.
func (n *Node) Connect(peers map[model.ReplicaID]string) error {
	return n.connect(peers, false)
}

func (n *Node) connect(peers map[model.ReplicaID]string, skipLinked bool) error {
	var err error
	var added []*peerSender
	if e := n.s0().inLoop(func() { added, err = n.connectInLoop(peers, skipLinked) }); e != nil {
		return e
	}
	if err != nil {
		return err
	}
	// Offer each remaining shard's backlog in that shard's own loop turn.
	// The link is already registered, so the shard may have enqueued fresh
	// broadcasts in between — offerBacklog replaces the queue wholesale
	// with the full backlog snapshot taken in the shard's turn, which
	// includes those broadcasts, so nothing is lost or duplicated.
	for _, s := range n.shards[1:] {
		s := s
		for _, p := range added {
			p := p
			if e := s.inLoop(func() { p.offerBacklog(s.idx, s.updates[n.cfg.ID]) }); e != nil {
				return e
			}
		}
	}
	return nil
}

// connectInLoop validates and starts the links on shard 0's event loop, so
// shard 0's full-backlog offer and the peer-map insertion happen atomically
// with respect to its broadcastPending. (It must not be called while
// holding peerMu: the loop itself takes it via allPeers.) Returns the
// newly started senders so the caller can offer the other shards'
// backlogs.
func (n *Node) connectInLoop(peers map[model.ReplicaID]string, skipLinked bool) ([]*peerSender, error) {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	for id := range peers {
		if id == n.cfg.ID {
			return nil, fmt.Errorf("cluster: r%d listed as its own peer", id)
		}
		if int(id) < 0 || int(id) >= n.cfg.N {
			return nil, fmt.Errorf("cluster: peer r%d outside cluster of %d", id, n.cfg.N)
		}
		if _, dup := n.peers[id]; dup && !skipLinked {
			return nil, fmt.Errorf("cluster: duplicate link to r%d", id)
		}
	}
	var added []*peerSender
	for id, addr := range peers {
		if _, dup := n.peers[id]; dup {
			continue
		}
		n.view.Merge(membership.Member{ID: int(id), Addr: addr})
		p := newPeerSender(n, id, addr)
		for _, u := range n.s0().updates[n.cfg.ID] {
			p.enqueue(0, u)
		}
		n.peers[id] = p
		added = append(added, p)
		n.wg.Add(1)
		go p.run()
	}
	return added, nil
}

func (n *Node) allPeers() []*peerSender {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	out := make([]*peerSender, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, p)
	}
	return out
}

// inLoop runs fn on shard 0's event loop and waits for it to finish. It
// exists for the membership subsystem (member.go), which is gated to
// single-shard nodes — there, shard 0's loop is the node's only loop, so
// this is exactly the pre-sharding inLoop.
func (n *Node) inLoop(fn func()) error {
	return n.s0().inLoop(fn)
}

// liveEvent converts a recorded event for the streaming checker: the
// payload is stripped (the checker never inspects store state) and the
// recording node stamped on. The Frontier slice is shared with the history
// entry, which never mutates it.
func liveEvent(node model.ReplicaID, ev Event) livecheck.Event {
	return livecheck.Event{
		Node: node, Kind: ev.Kind, Lamport: ev.Lamport,
		Object: ev.Object, Op: ev.Op, Rval: ev.Rval,
		Dot: ev.Dot, Frontier: ev.Frontier,
		Origin: ev.Origin, Seq: ev.Seq,
	}
}

// Do applies one client operation at the replica owning obj's shard,
// records the do event (with visibility snapshot), and broadcasts any
// messages the operation made pending. Safe for concurrent use;
// operations on different shards run concurrently.
func (n *Node) Do(obj model.ObjectID, op model.Operation) (model.Response, error) {
	s := n.shards[n.router.Route(obj)]
	var resp model.Response
	var jerr error
	err := s.inLoop(func() {
		resp = s.doInLoop(obj, op)
		jerr = s.jerr
	})
	if err == nil {
		// A fail-stopping node must not confirm an operation whose event
		// may never have reached the journal.
		err = jerr
	}
	return resp, err
}

// Quiesced reports whether this node has nothing left to say: no pending
// broadcast and every peer link fully acknowledged. Cluster-wide
// quiescence (Definition 17) is all nodes reporting true — and because
// acks are only written after the receiver applied the update, a stable
// all-quiesced poll really does mean every sent message was delivered.
func (n *Node) Quiesced() bool {
	for _, s := range n.shards {
		var pending bool
		if s.inLoop(func() { pending = s.replica.PendingMessage() != nil }) != nil {
			return false
		}
		if pending {
			return false
		}
	}
	for _, p := range n.allPeers() {
		if !p.drained() {
			return false
		}
	}
	return n.viewLinked()
}

// viewLinked reports whether every member this node's view considers alive
// has a replication link. Without it a node could report quiescence while
// still holding updates a known-but-not-yet-linked joiner lacks — the
// drained() condition is vacuous for a link that does not exist yet.
func (n *Node) viewLinked() bool {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	for _, m := range n.view.Alive() {
		if m.ID == int(n.cfg.ID) || m.ID < 0 || m.ID >= n.cfg.N {
			continue
		}
		if _, ok := n.peers[model.ReplicaID(m.ID)]; !ok {
			return false
		}
	}
	return true
}

// Stats snapshots the node's counters. Each shard's slice of the snapshot
// is captured coherently in one of that shard's event-loop turns (counter,
// event count, checker verdicts, and pending-message verdict move
// together); the per-peer transport counters and quiescence composition
// are read between turns. For an unsharded node this is the pre-sharding
// single-turn snapshot exactly. The quiescence condition is evaluated
// inline — calling Quiesced() here would re-enter the event loops and
// deadlock.
func (n *Node) Stats() Stats {
	s := Stats{Node: n.cfg.ID, Store: n.cfg.Store.Name(), Codec: n.codec.Name()}
	sharded := n.cfg.Shards > 1
	if sharded {
		s.Shards = n.cfg.Shards
		s.ShardOps = make([]int64, n.cfg.Shards)
		s.ShardSends = make([]int64, n.cfg.Shards)
		s.ShardReceives = make([]int64, n.cfg.Shards)
		s.ShardEvents = make([]int64, n.cfg.Shards)
	}
	counters := func() {
		s.BytesOut = n.bytesOut.Load()
		s.FramesOut = n.framesOut.Load()
		s.DupFrames = n.dupFrames.Load()
		s.GapFrames = n.gapFrames.Load()
		s.SyncPulled = n.syncPulled.Load()
		s.SyncServed = n.syncServed.Load()
		s.Members = len(n.view.Alive())
		for _, p := range n.allPeers() {
			s.Retransmits += p.retransmits.Load()
			s.Reconnects += p.reconnects.Load()
			if p.failed.Load() {
				s.FailedLinks++
			}
		}
	}
	quiesced := true
	closed := false
	for i, sh := range n.shards {
		i, sh := i, sh
		err := sh.inLoop(func() {
			ops, sends, receives := sh.ops.Load(), sh.sends.Load(), sh.receives.Load()
			s.Ops += ops
			s.Sends += sends
			s.Receives += receives
			s.Events += int64(len(sh.events))
			s.Violations += len(sh.checker.Violations())
			if sh.replica.PendingMessage() != nil {
				quiesced = false
			}
			if sharded {
				s.ShardOps[i] = ops
				s.ShardSends[i] = sends
				s.ShardReceives[i] = receives
				s.ShardEvents[i] = int64(len(sh.events))
			}
		})
		if err != nil {
			closed = true
			break
		}
	}
	if closed {
		// Node closed: the loops are gone, so a coherent snapshot is moot —
		// report the lock-free counters' final values (loop-owned state
		// stays zero; reading it here would race with the exiting loops).
		s.Ops, s.Sends, s.Receives, s.Events, s.Violations = 0, 0, 0, 0, 0
		for i, sh := range n.shards {
			s.Ops += sh.ops.Load()
			s.Sends += sh.sends.Load()
			s.Receives += sh.receives.Load()
			if sharded {
				s.ShardOps[i] = sh.ops.Load()
				s.ShardSends[i] = sh.sends.Load()
				s.ShardReceives[i] = sh.receives.Load()
			}
		}
		counters()
		return s
	}
	counters()
	for _, p := range n.allPeers() {
		if !p.drained() {
			quiesced = false
		}
	}
	s.Quiesced = quiesced && n.viewLinked()
	return s
}

// Violations returns the §4 property violations the node's checkers
// observed, across all shards (live counterpart of
// sim.Cluster.PropertyViolations).
func (n *Node) Violations() []*store.PropertyViolation {
	var v []*store.PropertyViolation
	for _, s := range n.shards {
		s := s
		s.inLoop(func() { v = append(v, s.checker.Violations()...) })
	}
	return v
}

// History snapshots the node's recorded local history. On a sharded node
// this is shard 0's history; use ShardHistory to audit every shard.
func (n *Node) History() History {
	return n.s0().history()
}

// ShardHistory snapshots one shard's recorded local history. Histories of
// the same shard across nodes merge and audit together; histories of
// different shards never do (independent (Origin, Seq) domains).
func (n *Node) ShardHistory(shard int) (History, error) {
	if shard < 0 || shard >= len(n.shards) {
		return History{}, fmt.Errorf("cluster: shard %d outside node with %d shards", shard, len(n.shards))
	}
	return n.shards[shard].history(), nil
}

// FinalHistory returns the recorded history of a node that has been
// Closed: the event loops have exited, the log is frozen, and it can be
// read without a loop turn. This is the durable state a fail-stop crash
// leaves behind — capturing it only after Close means no update can be
// applied (and acknowledged to its sender) after the snapshot, so an
// acked update is always in the log that survives. On a sharded node this
// is shard 0's history (the Supervisor, its only caller, runs single-shard
// clusters). Calling it on a live node would race the loops; it panics
// instead.
func (n *Node) FinalHistory() History {
	select {
	case <-n.done:
	default:
		panic("cluster: FinalHistory called before Close")
	}
	return History{
		Node: n.cfg.ID, N: n.cfg.N, Store: n.cfg.Store.Name(),
		Events: append([]Event(nil), n.s0().events...),
	}
}

// BreakConnections closes every live dial-side replication connection,
// simulating network resets. Links redial and retransmit; no update is
// lost. Returns how many connections were torn down.
func (n *Node) BreakConnections() int {
	broken := 0
	for _, p := range n.allPeers() {
		p.mu.Lock()
		live := p.conn != nil
		p.mu.Unlock()
		if live {
			p.breakConn()
			broken++
		}
	}
	return broken
}

// Close shuts the node down: stops the event loop, listener, links, and
// open connections, then waits for every goroutine to exit.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.done)
		n.ln.Close()
		for _, p := range n.allPeers() {
			p.close()
		}
		n.connMu.Lock()
		for c := range n.conns {
			c.Close()
		}
		n.connMu.Unlock()
		n.wg.Wait()
		// The event loops have exited: no Append can follow, so the
		// journals can close (flushing their final state) without racing
		// the loops.
		for _, s := range n.shards {
			if s.closeJournal != nil {
				s.closeJournal()
			}
		}
	})
	return nil
}

func (n *Node) track(c net.Conn) bool {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	select {
	case <-n.done:
		return false
	default:
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *Node) untrack(c net.Conn) {
	n.connMu.Lock()
	delete(n.conns, c)
	n.connMu.Unlock()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !n.track(conn) {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// serveConn classifies an inbound connection by its first frame: a tHello
// marks a peer's replication stream; anything else is a client speaking
// request/response.
func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer n.untrack(conn)
	defer conn.Close()
	first, err := recvFrame(conn, n.cfg.MaxFrame)
	if err != nil {
		return
	}
	r := wire.NewReader(first)
	switch typ := r.Uvarint(); {
	case r.Err() != nil:
		return
	case typ == tHello:
		if h, err := decodeHello(r); err == nil {
			// Wrap the accept side too: acks written back to this peer
			// travel the reverse link, so an asymmetric cut of this→peer
			// suppresses acknowledgements even while updates flow in.
			if n.cfg.Faults != nil && int(h.From) < n.cfg.N {
				conn = n.cfg.Faults.WrapConn(conn, int(n.cfg.ID), int(h.From))
			}
			// A replication link only works between nodes agreeing on the
			// shard count: per-shard seq domains would cross-contaminate
			// otherwise. A pre-v5 dialer announces (implicitly) one shard,
			// so a sharded acceptor refuses it — "single-shard mode" means
			// two single-shard nodes interoperate exactly as before, not
			// that a sharded node degrades. The dialer observes the refusal
			// (or our mismatching shard count in the hello ack) and
			// fail-stops its side of the link.
			if h.Shards != uint64(n.cfg.Shards) {
				return
			}
			shardMode := n.cfg.Shards > 1
			if h.Version >= 2 {
				// Seal the negotiation before any update arrives: the dialer
				// streams v1 frames until this ack lands, so an ack lost to a
				// connection reset only ever costs compactness, not data.
				// The delivered watermark lets a v3 dialer prune its
				// full-backlog offer down to what we actually lack; in shard
				// mode the ack carries one watermark per shard.
				var delivered uint64
				shardDelivered := make([]uint64, n.cfg.Shards)
				if int(h.From) >= 0 && int(h.From) < n.cfg.N {
					for _, sh := range n.shards {
						sh := sh
						if sh.inLoop(func() { shardDelivered[sh.idx] = sh.delivered[h.From] }) != nil {
							return
						}
					}
					delivered = shardDelivered[0]
				}
				chosen := negotiateCodec(n.codec.ID(), h.Codec)
				chosenComp := negotiateComp(n.comp, h.Comp)
				w := wire.GetWriter()
				appendHelloAck(w, chosen, delivered, chosenComp, uint64(n.cfg.Shards), shardDelivered)
				ok := n.writeFrame(conn, w.Bytes(), n.cfg.MaxFrame)
				wire.PutWriter(w)
				if !ok {
					return
				}
			}
			n.serveReplication(conn, shardMode)
		}
		return
	case typ == tJoin:
		if j, err := decodeJoin(r); err == nil {
			n.serveJoin(conn, j)
		}
		return
	case typ == tGossip:
		if from, ms, err := decodeGossip(r, n.cfg.N); err == nil {
			n.serveGossip(conn, from, ms)
		}
		return
	}
	n.serveClient(conn, first)
}

// serveReplication applies a peer's update stream, answering each frame
// with the cumulative ack for its origin. The ack is written only after
// the owning shard's event loop applied (or deduplicated) the update — an
// acked update is a delivered update. A tBatch frame applies all its
// updates in one event-loop turn and answers with one cumulative ack —
// the ack coalescing half of the batching win. In shard mode every frame
// is a tShardBatch naming the shard whose seq domain it belongs to, and
// each earns a tShardAck; the classic frames are refused (and vice
// versa), so a confused peer cannot slip one shard's updates into
// another's counters.
func (n *Node) serveReplication(conn net.Conn, shardMode bool) {
	for {
		b, err := recvFrame(conn, n.cfg.MaxFrame)
		if err != nil {
			return
		}
		r := wire.NewReader(b)
		var us []protoUpdate
		sh := n.s0()
		switch r.Uvarint() {
		case tUpdate:
			if shardMode {
				return
			}
			u, err := decodeUpdate(r)
			if err != nil {
				return
			}
			us = []protoUpdate{u}
		case tBatch:
			if shardMode {
				return
			}
			if us, err = decodeBatch(r); err != nil || len(us) == 0 {
				return
			}
		case tShardBatch:
			if !shardMode {
				return
			}
			shardIdx, sus, err := decodeShardBatch(r)
			if err != nil || len(sus) == 0 || shardIdx >= uint64(len(n.shards)) {
				return
			}
			sh = n.shards[shardIdx]
			us = sus
		default:
			return
		}
		if int(us[0].Origin) < 0 || int(us[0].Origin) >= n.cfg.N {
			return
		}
		var cum uint64
		var ackable bool
		if sh.inLoop(func() {
			for _, u := range us {
				cum, ackable = sh.applyUpdate(u)
				if !ackable {
					return
				}
			}
		}) != nil {
			return
		}
		if !ackable {
			// Journal failure: the node is fail-stopping and these updates'
			// durability is unknown — drop the connection without acking so
			// the sender keeps them queued for the next incarnation.
			return
		}
		w := wire.GetWriter()
		if shardMode {
			appendShardAck(w, uint64(sh.idx), cum)
		} else {
			appendAck(w, cum)
		}
		ok := n.writeFrame(conn, w.Bytes(), n.cfg.MaxFrame)
		wire.PutWriter(w)
		if !ok {
			return
		}
	}
}

// serveClient answers request/response frames from one client connection.
// tStats/tHistory requests may trail a codec ID after the bare v1 request;
// a binary-codec request earns a binary reply (tStatsRespB/tHistoryRespB),
// anything else — including the bare v1 form — gets the JSON fallback. A
// compression offer may trail the codec (v4): a binary history reply that
// clears the floor then travels as a tCompressed envelope.
func (n *Node) serveClient(conn net.Conn, first []byte) {
	// reqMeta reads the optional trailing codec and compression fields of
	// a structured request and resolves both against this node's own
	// preferences.
	reqMeta := func(r *wire.Reader) (wire.CodecID, uint64) {
		if r.Remaining() == 0 {
			return wire.CodecJSON, wire.CompNone
		}
		codec := negotiateCodec(n.codec.ID(), wire.CodecID(r.Uvarint()))
		if r.Remaining() == 0 {
			return codec, wire.CompNone
		}
		return codec, negotiateComp(n.comp, r.Uvarint())
	}
	frame := first
	for {
		r := wire.NewReader(frame)
		typ := r.Uvarint()
		if r.Err() != nil {
			return
		}
		var reply []byte
		maxFrame := n.cfg.MaxFrame
		replyComp := wire.CompNone
		w := wire.GetWriter()
		switch typ {
		case tRequest:
			reqID, obj, op, err := decodeRequest(r)
			if err != nil {
				wire.PutWriter(w)
				return
			}
			resp, err := n.Do(obj, op)
			if err != nil {
				wire.PutWriter(w)
				return
			}
			reply = encodeResponse(reqID, resp)
		case tStats:
			if codec, _ := reqMeta(r); codec == wire.CodecBinary {
				w.Uvarint(tStatsRespB)
				appendStats(w, n.Stats())
				reply = w.Bytes()
			} else {
				data, err := json.Marshal(n.Stats())
				if err != nil {
					wire.PutWriter(w)
					return
				}
				reply = encodeJSON(tStatsResp, data)
			}
		case tHistory:
			maxFrame = historyMaxFrame
			codec, comp := reqMeta(r)
			// A shard index may trail the compression offer (v5): serve
			// that shard's projection. The bare form gets shard 0, which
			// on an unsharded node is the whole history.
			shard := 0
			if r.Remaining() > 0 {
				shard = int(r.Uvarint())
			}
			hist, herr := n.ShardHistory(shard)
			if herr != nil {
				wire.PutWriter(w)
				return
			}
			if codec == wire.CodecBinary {
				w.Uvarint(tHistoryRespB)
				if appendHistory(w, hist) != nil {
					wire.PutWriter(w)
					return
				}
				reply = w.Bytes()
				replyComp = comp
			} else {
				data, err := json.Marshal(hist)
				if err != nil {
					wire.PutWriter(w)
					return
				}
				reply = encodeJSON(tHistoryResp, data)
			}
		default:
			wire.PutWriter(w)
			return
		}
		ok := n.writeFrameComp(conn, reply, maxFrame, replyComp)
		wire.PutWriter(w)
		if !ok {
			return
		}
		var err error
		if frame, err = recvFrame(conn, n.cfg.MaxFrame); err != nil {
			return
		}
	}
}

func (n *Node) writeFrame(conn net.Conn, payload []byte, maxFrame int) bool {
	conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
	nBytes, err := wire.WriteFrame(conn, payload, maxFrame)
	n.bytesOut.Add(int64(nBytes))
	n.framesOut.Add(1)
	return err == nil
}

// WaitQuiesced polls until every node reports quiescence twice in a row
// (one clean poll can race an update in flight between an unacked queue
// and the receiving event loop; two consecutive clean polls cannot, since
// acks flow only after application). Returns false on timeout.
func WaitQuiesced(nodes []*Node, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	clean := 0
	for time.Now().Before(deadline) {
		all := true
		for _, n := range nodes {
			if !n.Quiesced() {
				all = false
				break
			}
		}
		if all {
			if clean++; clean >= 2 {
				return true
			}
		} else {
			clean = 0
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}
