package cluster

import (
	"bytes"
	"testing"

	"repro/internal/membership"
	"repro/internal/wire"
)

func TestJoinRoundTrip(t *testing.T) {
	in := joinReq{From: 2, Epoch: 5, Addr: "127.0.0.1:7002", Codec: wire.CodecBinary, Comp: wire.CompFlate}
	w := wire.NewWriter()
	appendJoin(w, in)
	r := wire.NewReader(w.Bytes())
	if typ := r.Uvarint(); typ != tJoin {
		t.Fatalf("type = %d, want tJoin", typ)
	}
	got, err := decodeJoin(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != in.From || got.Epoch != in.Epoch || got.Addr != in.Addr ||
		got.Version != helloVersion || got.Codec != in.Codec || got.Comp != in.Comp {
		t.Fatalf("join = %+v, want %+v at version %d", got, in, helloVersion)
	}
}

func TestJoinAckRoundTrip(t *testing.T) {
	ms := []membership.Member{
		{ID: 0, Addr: "127.0.0.1:7000", Epoch: 1},
		{ID: 1, Addr: "127.0.0.1:7001", Epoch: 3, Left: true},
		{ID: 2, Epoch: 0}, // addr unknown yet
	}
	w := wire.NewWriter()
	appendJoinAck(w, wire.CodecJSON, ms, wire.CompFlate)
	r := wire.NewReader(w.Bytes())
	if typ := r.Uvarint(); typ != tJoinAck {
		t.Fatalf("type = %d, want tJoinAck", typ)
	}
	codec, got, comp, err := decodeJoinAck(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if codec != wire.CodecJSON || len(got) != len(ms) || comp != wire.CompFlate {
		t.Fatalf("ack = (%d, %d members, comp %d)", codec, len(got), comp)
	}
	for i := range ms {
		if got[i] != ms[i] {
			t.Fatalf("member %d = %+v, want %+v", i, got[i], ms[i])
		}
	}
}

func TestGossipRoundTrip(t *testing.T) {
	ms := []membership.Member{{ID: 1, Addr: "x", Epoch: 2}}
	w := wire.NewWriter()
	appendGossip(w, 1, ms)
	r := wire.NewReader(w.Bytes())
	if typ := r.Uvarint(); typ != tGossip {
		t.Fatalf("type = %d, want tGossip", typ)
	}
	from, got, err := decodeGossip(r, 2)
	if err != nil || from != 1 || len(got) != 1 || got[0] != ms[0] {
		t.Fatalf("gossip = (r%d, %+v, %v)", from, got, err)
	}
}

func TestDecodeMembersRejectsHostileFrames(t *testing.T) {
	// Out-of-population ID: a corrupt frame must not grow the cluster.
	w := wire.NewWriter()
	appendMembers(w, []membership.Member{{ID: 7, Addr: "x"}})
	if _, err := decodeMembers(wire.NewReader(w.Bytes()), 3); err == nil {
		t.Fatal("member ID 7 accepted into a 3-replica cluster")
	}
	// Implausible count must be rejected before allocation.
	w = wire.NewWriter()
	w.Uvarint(1 << 40)
	if _, err := decodeMembers(wire.NewReader(w.Bytes()), 3); err == nil {
		t.Fatal("implausible member count accepted")
	}
}

func TestDigestRoundTrip(t *testing.T) {
	ds := []originDigest{
		{Origin: 0, Count: 64, Root: membership.HashUpdate(0, 1, []byte("a"))},
		{Origin: 1, Count: 0},
		{Origin: 2, Count: 7, Root: membership.HashUpdate(2, 7, nil)},
	}
	// Request layout (no prefix roots).
	w := wire.NewWriter()
	appendDigest(w, tDigest, ds)
	r := wire.NewReader(w.Bytes())
	if typ := r.Uvarint(); typ != tDigest {
		t.Fatalf("type = %d, want tDigest", typ)
	}
	got, err := decodeDigest(r, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		want := ds[i]
		want.PrefixRoot = membership.Hash{}
		if got[i] != want {
			t.Fatalf("digest %d = %+v, want %+v", i, got[i], want)
		}
	}
	// Response layout carries the prefix roots too.
	ds[0].PrefixRoot = membership.HashUpdate(0, 2, []byte("b"))
	w = wire.NewWriter()
	appendDigest(w, tDigestResp, ds)
	r = wire.NewReader(w.Bytes())
	if typ := r.Uvarint(); typ != tDigestResp {
		t.Fatalf("type = %d, want tDigestResp", typ)
	}
	got, err = decodeDigest(r, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		if got[i] != ds[i] {
			t.Fatalf("digest %d = %+v, want %+v", i, got[i], ds[i])
		}
	}
}

func TestTreeReqRespRoundTrip(t *testing.T) {
	w := wire.NewWriter()
	appendTreeReq(w, 2, 100, 1, 3)
	r := wire.NewReader(w.Bytes())
	if typ := r.Uvarint(); typ != tTreeReq {
		t.Fatalf("type = %d, want tTreeReq", typ)
	}
	origin, prefix, level, index, err := decodeTreeReq(r)
	if err != nil || origin != 2 || prefix != 100 || level != 1 || index != 3 {
		t.Fatalf("tree req = (r%d, %d, %d, %d, %v)", origin, prefix, level, index, err)
	}

	h := membership.HashUpdate(0, 9, []byte("leaf"))
	w = wire.NewWriter()
	appendTreeResp(w, h, true)
	r = wire.NewReader(w.Bytes())
	if typ := r.Uvarint(); typ != tTreeResp {
		t.Fatalf("type = %d, want tTreeResp", typ)
	}
	gh, ok, err := decodeTreeResp(r)
	if err != nil || !ok || gh != h {
		t.Fatalf("tree resp = (%x, %v, %v)", gh[:4], ok, err)
	}
}

func TestRangeRoundTrip(t *testing.T) {
	w := wire.NewWriter()
	appendRangeReq(w, 1, 40, 25, 8)
	r := wire.NewReader(w.Bytes())
	if typ := r.Uvarint(); typ != tRangeReq {
		t.Fatalf("type = %d, want tRangeReq", typ)
	}
	origin, from, count, window, err := decodeRangeReq(r)
	if err != nil || origin != 1 || from != 40 || count != 25 || window != 8 {
		t.Fatalf("range req = (r%d, %d, %d, win %d, %v)", origin, from, count, window, err)
	}

	// A pre-v4 request (no trailing window) decodes as stop-and-wait.
	w = wire.NewWriter()
	w.Uvarint(1)
	w.Uvarint(40)
	w.Uvarint(25)
	origin, from, count, window, err = decodeRangeReq(wire.NewReader(w.Bytes()))
	if err != nil || origin != 1 || from != 40 || count != 25 || window != 1 {
		t.Fatalf("v3 range req = (r%d, %d, %d, win %d, %v), want window 1", origin, from, count, window, err)
	}

	us := []protoUpdate{
		{Origin: 1, Seq: 41, Lamport: 90, Payload: []byte("p41")},
		{Origin: 1, Seq: 42, Lamport: 91, Payload: nil},
	}
	w = wire.NewWriter()
	appendRangeResp(w, 1, us)
	r = wire.NewReader(w.Bytes())
	if typ := r.Uvarint(); typ != tRangeResp {
		t.Fatalf("type = %d, want tRangeResp", typ)
	}
	got, err := decodeRangeResp(r)
	if err != nil || len(got) != len(us) {
		t.Fatalf("range resp: %d updates, err %v", len(got), err)
	}
	for i := range us {
		if got[i].Origin != us[i].Origin || got[i].Seq != us[i].Seq ||
			got[i].Lamport != us[i].Lamport || !bytes.Equal(got[i].Payload, us[i].Payload) {
			t.Fatalf("update %d = %+v, want %+v", i, got[i], us[i])
		}
	}
}

func TestRangeRespImplausibleCountRejected(t *testing.T) {
	w := wire.NewWriter()
	w.Uvarint(1)       // origin
	w.Uvarint(1 << 40) // absurd count
	if us, err := decodeRangeResp(wire.NewReader(w.Bytes())); err == nil {
		t.Fatalf("decoded %d updates from implausible count", len(us))
	}
}

// FuzzDecodeDigest throws arbitrary bytes at the digest decoder (both
// layouts): it must never panic or over-allocate, and whatever it accepts
// must re-encode to an equivalent digest.
func FuzzDecodeDigest(f *testing.F) {
	seed := func(f2 func(w *wire.Writer)) []byte {
		w := wire.NewWriter()
		f2(w)
		return w.Bytes()
	}
	f.Add(seed(func(w *wire.Writer) {
		appendDigest(w, tDigest, []originDigest{{Origin: 0, Count: 3, Root: membership.HashUpdate(0, 1, []byte("x"))}})
	})[1:], false)
	f.Add(seed(func(w *wire.Writer) {
		appendDigest(w, tDigestResp, []originDigest{
			{Origin: 1, Count: 64, Root: membership.HashUpdate(1, 2, nil), PrefixRoot: membership.HashUpdate(1, 3, nil)},
			{Origin: 2, Count: 0},
		})
	})[1:], true)
	f.Add(seed(func(w *wire.Writer) {
		w.Uvarint(1 << 40) // implausible count
	}), false)
	f.Add([]byte{}, true)
	f.Add([]byte{0x01}, false)
	f.Fuzz(func(t *testing.T, b []byte, withPrefix bool) {
		ds, err := decodeDigest(wire.NewReader(b), withPrefix)
		if err != nil {
			return
		}
		typ := uint64(tDigest)
		if withPrefix {
			typ = tDigestResp
		}
		w := wire.NewWriter()
		appendDigest(w, typ, ds)
		r := wire.NewReader(w.Bytes())
		r.Uvarint() // type
		again, err := decodeDigest(r, withPrefix)
		if err != nil {
			t.Fatalf("re-encoded digest does not decode: %v", err)
		}
		if len(again) != len(ds) {
			t.Fatalf("re-decode %d digests, want %d", len(again), len(ds))
		}
		for i := range ds {
			want := ds[i]
			if !withPrefix {
				want.PrefixRoot = membership.Hash{}
			}
			if again[i] != want {
				t.Fatalf("digest %d drifted: %+v vs %+v", i, again[i], want)
			}
		}
	})
}
