package cluster

import (
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/fault"
	"repro/internal/livecheck"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
)

// TestLiveCheckerFlagsViolationDuringRun is the tentpole's acceptance
// check on the TCP engine: a fault schedule that makes the lww store
// surface a causal inversion — r2 applies a write whose causal dependency
// is stuck behind a cut link — must be flagged by the streaming checker
// WHILE the cluster is still degraded, before heal and quiescence. After
// the run, the offline audit over the same recorded histories must agree.
func TestLiveCheckerFlagsViolationDuringRun(t *testing.T) {
	const n = 3
	em := fault.NewNetem(n)
	ck := livecheck.New(n, livecheck.Options{Types: spec.MVRTypes()})

	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		st, err := store.Open("lww", spec.MVRTypes(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig(model.ReplicaID(i), n, st)
		cfg.Faults = em
		cfg.Tap = func(_ int, ev livecheck.Event) { ck.Observe(ev) }
		nd, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	for i, nd := range nodes {
		peers := make(map[model.ReplicaID]string)
		for j, other := range nodes {
			if j != i {
				peers[model.ReplicaID(j)] = other.Addr()
			}
		}
		if err := nd.Connect(peers); err != nil {
			t.Fatal(err)
		}
	}

	// Cut r0→r2: r0's writes reach r1 but are stuck in retransmission
	// toward r2. r1→r2 stays open, so a write made at r1 AFTER seeing r0's
	// arrives at r2 ahead of its causal dependency — and lww applies it
	// immediately instead of buffering.
	em.Apply(fault.Directive{Kind: fault.KindLinkCut, From: 0, To: 2}, time.Millisecond)

	if _, err := nodes[0].Do("x", model.Write("a")); err != nil {
		t.Fatal(err)
	}
	waitValue := func(nd *Node, want model.Value) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := nd.Do("x", model.Read())
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range resp.Values {
				if v == want {
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("r%d never saw %q", nd.ID(), want)
	}
	waitValue(nodes[1], "a")
	if _, err := nodes[1].Do("x", model.Write("b")); err != nil {
		t.Fatal(err)
	}
	// The polling reads at r2 are themselves tapped do events: the first
	// one whose frontier covers b without a is the violation moment.
	waitValue(nodes[2], "b")

	during := ck.Verdict()
	if during.Violations == 0 {
		t.Fatalf("live checker saw nothing while the cluster was degraded: %+v", during)
	}
	found := false
	for _, v := range during.First {
		if v.Kind == livecheck.CausalDependency && v.Node == 2 &&
			v.Dot == (model.Dot{Origin: 1, Seq: 1}) && v.Dep == (model.Dot{Origin: 0, Seq: 1}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("want CausalDependency at r2 for (r1,1) missing (r0,1); got %v", during.First)
	}

	// Heal, drain, and replay the recorded histories offline: the
	// post-run audit must reach the same verdict as the streaming one.
	em.Heal()
	if !WaitQuiesced(nodes, 30*time.Second) {
		t.Fatal("cluster did not quiesce after heal")
	}
	doers := make([]Doer, n)
	for i, nd := range nodes {
		doers[i] = nd
	}
	if err := CheckConverged(doers, []model.ObjectID{"x"}); err != nil {
		t.Fatal(err)
	}
	hists := make([]History, n)
	for i, nd := range nodes {
		hists[i] = nd.History()
	}
	audit, err := BuildAudit(hists)
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Exec.CheckWellFormed(); err != nil {
		t.Fatalf("merged execution not well-formed: %v", err)
	}
	if consistency.CheckCausal(audit.Abstract, spec.MVRTypes()) == nil {
		t.Fatal("post-run audit calls the run causal; the streaming checker flagged it")
	}
}
