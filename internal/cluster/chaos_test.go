package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
)

// TestPeerSenderCloseTwice is the double-close regression: a sender closed
// from both the reconnect path and node shutdown must not panic on the
// second close.
func TestPeerSenderCloseTwice(t *testing.T) {
	n := &Node{cfg: Config{ID: 0, N: 2, Seed: 1}.withDefaults()}
	p := newPeerSender(n, 1, "127.0.0.1:1")
	p.close()
	p.close() // must be a no-op, not a panic
	select {
	case <-p.done:
	default:
		t.Fatal("done not closed")
	}
}

// TestPeerJitterSeeded pins the seeded-jitter fix: the same (seed, node,
// peer) triple reproduces the exact jitter sequence, different peers of the
// same node draw decorrelated streams, and nothing touches the global
// math/rand source.
func TestPeerJitterSeeded(t *testing.T) {
	sample := func(seed int64, id, peer int) []time.Duration {
		n := &Node{cfg: Config{ID: model.ReplicaID(id), N: 4, Seed: seed}.withDefaults()}
		p := newPeerSender(n, model.ReplicaID(peer), "addr")
		out := make([]time.Duration, 20)
		for i := range out {
			out[i] = p.jitter(100 * time.Millisecond)
		}
		return out
	}
	a := sample(7, 0, 1)
	b := sample(7, 0, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := sample(7, 0, 2)
	d := sample(8, 0, 1)
	same := func(x []time.Duration) bool {
		for i := range a {
			if a[i] != x[i] {
				return false
			}
		}
		return true
	}
	if same(c) {
		t.Fatal("different peers drew an identical jitter stream")
	}
	if same(d) {
		t.Fatal("different seeds drew an identical jitter stream")
	}
}

// TestMergeOrderValidatesSendBeforeReceive feeds corrupted histories to the
// merge: a receive whose Lamport clock sorts it before its send, and a
// receive with no send anywhere, must both surface as typed *OrderError
// from MergeHistories and BuildAudit alike.
func TestMergeOrderValidatesSendBeforeReceive(t *testing.T) {
	sender := History{Node: 0, N: 2, Events: []Event{
		{Kind: model.ActSend, Lamport: 5, Origin: 0, Seq: 1, Payload: []byte("m")},
	}}
	early := History{Node: 1, N: 2, Events: []Event{
		// Lamport 2 < the send's 5: sorts before it in the merge.
		{Kind: model.ActReceive, Lamport: 2, Origin: 0, Seq: 1},
	}}
	var oe *OrderError
	if _, err := MergeHistories([]History{sender, early}); !errors.As(err, &oe) {
		t.Fatalf("receive-before-send: err = %v, want *OrderError", err)
	} else if !oe.BeforeSend || oe.Node != 1 || oe.Origin != 0 || oe.Seq != 1 {
		t.Fatalf("wrong OrderError fields: %+v", oe)
	}

	orphan := History{Node: 1, N: 2, Events: []Event{
		{Kind: model.ActReceive, Lamport: 9, Origin: 0, Seq: 3},
	}}
	oe = nil
	if _, err := BuildAudit([]History{sender, orphan}); !errors.As(err, &oe) {
		t.Fatalf("orphan receive: err = %v, want *OrderError", err)
	} else if oe.BeforeSend {
		t.Fatalf("orphan receive misclassified as before-send: %+v", oe)
	}
}

// TestNodeRestartRestoresHistory exercises the crash/restart path directly:
// write at a node, crash it (capturing its history), restart it from that
// history on the same address, and require the restarted node to still hold
// its pre-crash state, resume its Lamport clock, and audit clean with its
// peers after more traffic.
func TestNodeRestartRestoresHistory(t *testing.T) {
	nodes := startCluster(t, "causal", 3)
	for i := 0; i < 5; i++ {
		if _, err := nodes[0].Do("x", model.Write(model.Value(fmt.Sprintf("pre%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	if !WaitQuiesced(nodes, 30*time.Second) {
		t.Fatal("did not quiesce before crash")
	}

	victim := nodes[2]
	addr := victim.Addr()
	hist := victim.History()
	preEvents := len(hist.Events)
	if preEvents == 0 {
		t.Fatal("no events to restore")
	}
	victim.Close()

	st, err := store.Open("causal", spec.MVRTypes(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(2, 3, st)
	cfg.Listen = addr
	cfg.Restore = &hist
	var reborn *Node
	for attempt := 0; attempt < 50; attempt++ {
		if reborn, err = NewNode(cfg); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(func() { reborn.Close() })
	if err := reborn.Connect(map[model.ReplicaID]string{0: nodes[0].Addr(), 1: nodes[1].Addr()}); err != nil {
		t.Fatal(err)
	}
	nodes[2] = reborn

	// Pre-crash state survived the restart.
	resp, err := reborn.Do("x", model.Read())
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Values) != 1 || resp.Values[0] != "pre4" {
		t.Fatalf("restored read = %v, want [pre4]", resp)
	}

	// Fresh traffic everywhere, including the reborn node.
	for i, nd := range nodes {
		if _, err := nd.Do("y", model.Write(model.Value(fmt.Sprintf("post%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	if !WaitQuiesced(nodes, 30*time.Second) {
		t.Fatal("did not quiesce after restart")
	}
	doers := make([]Doer, len(nodes))
	for i, nd := range nodes {
		doers[i] = nd
	}
	if err := CheckConverged(doers, []model.ObjectID{"x", "y"}); err != nil {
		t.Fatal(err)
	}

	hists := make([]History, len(nodes))
	for i, nd := range nodes {
		hists[i] = nd.History()
	}
	if len(hists[2].Events) <= preEvents {
		t.Fatalf("restored history lost events: %d <= %d", len(hists[2].Events), preEvents)
	}
	audit, err := BuildAudit(hists)
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Exec.CheckWellFormed(); err != nil {
		t.Fatalf("merged execution not well-formed: %v", err)
	}
	if err := consistency.CheckCausal(audit.Abstract, spec.MVRTypes()); err != nil {
		t.Fatalf("derived abstract execution not causal: %v", err)
	}
}

// TestRestoreResendLateConnectingPeer pins the late-connect contract: a
// node restarted from its history must offer the FULL live backlog — not
// just the restored prefix — to peers that connect only AFTER the restart.
// A second restart re-offers the same (now entirely stale) backlog, and
// the peer's delivered watermark on the hello ack prunes it before the
// first drain, so nothing stale is retransmitted and the audit stays
// clean.
func TestRestoreResendLateConnectingPeer(t *testing.T) {
	st0, err := store.Open("causal", spec.MVRTypes(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st1, err := store.Open("causal", spec.MVRTypes(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r0, err := NewNode(fastConfig(0, 2, st0))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewNode(fastConfig(1, 2, st1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r1.Close() })
	// Only r1→r0 is linked; r0 accumulates a send backlog with nowhere to go.
	if err := r1.Connect(map[model.ReplicaID]string{0: r0.Addr()}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := r0.Do("x", model.Write(model.Value(fmt.Sprintf("v%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r1.Do("y", model.Write(model.Value("w"))); err != nil {
		t.Fatal(err)
	}
	if !WaitQuiesced([]*Node{r0, r1}, 30*time.Second) {
		t.Fatal("did not quiesce before crash")
	}
	if resp, err := r1.Do("x", model.Read()); err != nil || len(resp.Values) != 0 {
		t.Fatalf("r1 saw x=%v before any r0→r1 link existed", resp.Values)
	}

	addr := r0.Addr()
	restart := func(h History) *Node {
		t.Helper()
		st, err := store.Open("causal", spec.MVRTypes(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig(0, 2, st)
		cfg.Listen = addr
		cfg.Restore = &h
		var nd *Node
		for attempt := 0; attempt < 50; attempt++ {
			if nd, err = NewNode(cfg); err == nil {
				return nd
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("restart: %v", err)
		return nil
	}

	r0.Close()
	r0 = restart(r0.FinalHistory())
	// The peer connects late: only now does r0 learn r1's address, and the
	// restored backlog must flow.
	if err := r0.Connect(map[model.ReplicaID]string{1: r1.Addr()}); err != nil {
		t.Fatal(err)
	}
	if !WaitQuiesced([]*Node{r0, r1}, 30*time.Second) {
		t.Fatal("did not quiesce after late connect")
	}
	if resp, err := r1.Do("x", model.Read()); err != nil || len(resp.Values) != 1 || resp.Values[0] != "v4" {
		t.Fatalf("r1 read x=%v after late connect, want [v4]", resp.Values)
	}

	// Second crash/restart: the re-offered backlog is now entirely stale.
	// r1's hello ack carries delivered=5, which pre-acks the whole offer:
	// the connection quiesces without shipping (or r1 deduplicating) a
	// single stale frame.
	r0.Close()
	r0 = restart(r0.FinalHistory())
	t.Cleanup(func() { r0.Close() })
	if err := r0.Connect(map[model.ReplicaID]string{1: r1.Addr()}); err != nil {
		t.Fatal(err)
	}
	if !WaitQuiesced([]*Node{r0, r1}, 30*time.Second) {
		t.Fatal("did not quiesce after second restart")
	}
	if dups := r1.Stats().DupFrames; dups != 0 {
		t.Fatalf("stale backlog shipped %d dup frames; the hello-ack delivered watermark should have pruned the offer", dups)
	}
	if err := CheckConverged([]Doer{r0, r1}, []model.ObjectID{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	audit, err := BuildAudit([]History{r0.History(), r1.History()})
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Exec.CheckWellFormed(); err != nil {
		t.Fatalf("merged execution not well-formed: %v", err)
	}
	if err := consistency.CheckCausal(audit.Abstract, spec.MVRTypes()); err != nil {
		t.Fatalf("derived abstract execution not causal: %v", err)
	}
	for _, nd := range []*Node{r0, r1} {
		if v := nd.Violations(); len(v) != 0 {
			t.Fatalf("r%d property violations: %v", nd.ID(), v)
		}
	}
}

// TestSupervisorScheduleAuditsClean is the cluster-side tentpole check: a
// seeded schedule with a partition, link shaping, and a crash/restart runs
// against a live 3-node TCP cluster under concurrent load, and the run
// still quiesces, converges, and audits clean — with the crash/restart path
// actually exercised.
func TestSupervisorScheduleAuditsClean(t *testing.T) {
	st, err := store.Open("causal", spec.MVRTypes(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	em := fault.NewNetem(n)
	base := Config{
		Store: st, Seed: 11,
		DialTimeout:    time.Second,
		DialBackoffMin: 5 * time.Millisecond,
		DialBackoffMax: 100 * time.Millisecond,
		RetransmitMin:  25 * time.Millisecond,
		RetransmitMax:  250 * time.Millisecond,
	}
	sup, err := NewSupervisor(base, n, em, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	sched := fault.Generate(fault.Config{Seed: 11, N: n, Steps: 80, Partitions: 1, Crashes: 1, LinkFaults: 2})
	objects := []model.ObjectID{"x", "y", "z"}

	var wg sync.WaitGroup
	schedErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		schedErr <- sup.RunSchedule(sched)
	}()
	const workers = 3
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 60; i++ {
				obj := objects[rng.Intn(len(objects))]
				op := model.Read()
				if rng.Intn(2) == 0 {
					op = model.Write(model.Value(fmt.Sprintf("w%d.%d", w, i)))
				}
				// Downtime errors are expected while the victim is crashed.
				_, _ = sup.Do(w%n, obj, op)
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if err := <-schedErr; err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if crashes, restarts := sup.Crashes(); crashes != 1 || restarts != 1 {
		t.Fatalf("crashes/restarts = %d/%d, want 1/1", crashes, restarts)
	}

	live := sup.Nodes()
	if len(live) != n {
		t.Fatalf("%d nodes live after schedule, want %d", len(live), n)
	}
	if !WaitQuiesced(live, 30*time.Second) {
		for _, nd := range live {
			t.Logf("r%d stats: %+v", nd.ID(), nd.Stats())
		}
		t.Fatal("cluster did not quiesce after the schedule")
	}
	doers := make([]Doer, n)
	for i := 0; i < n; i++ {
		doers[i] = sup.Doer(i)
	}
	if err := CheckConverged(doers, objects); err != nil {
		t.Fatal(err)
	}
	hists, err := sup.Histories()
	if err != nil {
		t.Fatal(err)
	}
	audit, err := BuildAudit(hists)
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Exec.CheckWellFormed(); err != nil {
		t.Fatalf("merged execution not well-formed: %v", err)
	}
	if err := consistency.CheckCausal(audit.Abstract, spec.MVRTypes()); err != nil {
		t.Fatalf("derived abstract execution not causal: %v", err)
	}
	for _, nd := range live {
		if v := nd.Violations(); len(v) != 0 {
			t.Fatalf("r%d property violations: %v", nd.ID(), v)
		}
	}
}
