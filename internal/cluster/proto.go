package cluster

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/wire"
)

// Frame types of the cluster protocol. Every frame is a wire.WriteFrame
// length-delimited payload whose first uvarint is the type; the rest is
// type-specific, encoded with the repository's varint codec.
//
// Replication connections are directional: the broadcasting node dials its
// peer, opens with tHello, and streams tUpdate (or, once both ends have
// negotiated the binary codec, tBatch) frames in seq order; the accepting
// side answers each applied frame with a cumulative tAck on the same
// connection — one ack per frame, so a batch of k updates coalesces k acks
// into one. Client connections skip the hello and speak request/response
// pairs.
//
// Codec negotiation rides the hello exchange. A v2 hello appends a protocol
// version and the dialer's preferred codec ID after the v1 {from} field; a
// v1 receiver reads {from} and ignores the rest, so the extension is
// invisible to it. A v2 receiver answers immediately with tHelloAck carrying
// the chosen codec — the lower of the two preferences, wire.JSON being the
// floor every version speaks. Until the dialer sees the tHelloAck it streams
// in the v1 format, so a v1 peer (which never acks the hello) simply keeps
// the connection in the fallback forever, and no side ever blocks waiting
// for a negotiation round-trip.
const (
	tHello        = 1  // {from [, version, codec]}     replica → peer, opens a replication conn
	tUpdate       = 2  // {origin, seq, lamport, payload}
	tAck          = 3  // {cumSeq}                      cumulative ack of the dialer's updates
	tRequest      = 4  // {reqID, obj, kind, arg, delta}
	tResponse     = 5  // {reqID, ok, count, hasValues, values...}
	tStats        = 6  // {[codec]}
	tStatsResp    = 7  // {json}
	tHistory      = 8  // {[codec]}
	tHistoryResp  = 9  // {json}
	tHelloAck     = 10 // {version, codec}              acceptor → dialer, seals negotiation
	tBatch        = 11 // {origin, count, (seq, lamport, payload)...}
	tStatsRespB   = 12 // {binary stats}
	tHistoryRespB = 13 // {binary history}

	// Shard-multiplexed replication (v5). One connection carries every
	// shard's update stream; each frame names the shard whose independent
	// seq domain it belongs to. Only used once both ends have sealed an
	// equal shard count via the hello exchange — a single-shard link never
	// emits them, so pre-v5 peers interoperate untouched.
	tShardBatch = 25 // {shard, origin, count, (seq, lamport, payload)...}
	tShardAck   = 26 // {shard, cumSeq}
)

// helloVersion is the protocol version a hello announces. Version 1 is
// the bare {from} hello with JSON structured transfers and one update per
// frame; version 2 adds codec negotiation, batch frames, and binary
// structured transfers; version 3 adds the delivered watermark on
// tHelloAck (so a dialer offering its full backlog prunes what the
// acceptor already holds before the first send) and the membership frames
// in proto_member.go; version 4 adds per-frame compression (a trailing
// algorithm ID on tHello/tHelloAck/tJoin/tJoinAck negotiated min-wins
// like the codec, plus the tCompressed envelope in compress.go) and the
// windowed range pulls (a trailing credit window on tRangeReq); version 5
// adds the shard count (trailing on tHello/tHelloAck) and the
// shard-multiplexed tShardBatch/tShardAck frames, plus per-shard
// delivered watermarks trailing the tHelloAck.
const helloVersion = 5

// historyMaxFrame is the frame limit for history transfers, which carry a
// whole recorded execution and dwarf every other frame.
const historyMaxFrame = 64 << 20

type protoUpdate struct {
	Origin  model.ReplicaID
	Seq     uint64
	Lamport uint64
	Payload []byte
}

// hello carries a decoded tHello: the v1 fields plus the negotiation
// extension (zero-valued when the dialer spoke v1). Shards is the dialer's
// shard count; pre-v5 hellos decode it as 1 (single-shard mode).
type hello struct {
	From    model.ReplicaID
	Version uint64
	Codec   wire.CodecID
	Comp    uint64
	Shards  uint64
}

// appendHello encodes a v5 hello into w. The extension fields trail the v1
// layout, which is what keeps old receivers compatible: they stop reading
// after From (and a v2/v3 receiver stops before the compression ID, a v4
// receiver before the shard count).
func appendHello(w *wire.Writer, from model.ReplicaID, codec wire.CodecID, comp uint64, shards uint64) {
	w.Uvarint(tHello)
	w.Uvarint(uint64(from))
	w.Uvarint(helloVersion)
	w.Uvarint(uint64(codec))
	w.Uvarint(comp)
	w.Uvarint(shards)
}

// decodeHello decodes a hello whose type tag has already been read. A bare
// v1 hello (nothing after From) yields Version 1 and the JSON codec; a
// pre-v4 hello has no compression ID and yields wire.CompNone; a pre-v5
// hello has no shard count and yields 1.
func decodeHello(r *wire.Reader) (hello, error) {
	h := hello{Version: 1, Codec: wire.CodecJSON, Shards: 1}
	h.From = model.ReplicaID(r.Uvarint())
	if err := r.Err(); err != nil {
		return h, err
	}
	if r.Remaining() == 0 {
		return h, nil
	}
	h.Version = r.Uvarint()
	h.Codec = wire.CodecID(r.Uvarint())
	if err := r.Err(); err != nil {
		return h, err
	}
	if r.Remaining() == 0 {
		return h, nil
	}
	h.Comp = r.Uvarint()
	if err := r.Err(); err != nil {
		return h, err
	}
	if r.Remaining() == 0 {
		return h, nil
	}
	h.Shards = r.Uvarint()
	return h, r.Err()
}

// appendHelloAck encodes the acceptor's negotiation answer. delivered is
// the acceptor's cumulative delivered count for the dialer's origin: a v3
// dialer treats it as a pre-ack and prunes its offer queue, which is what
// makes Connect's full-backlog offer cost one varint instead of a
// re-shipped history on reconnect. A v2 dialer stops reading after the
// codec and retransmits the backlog as before — correct, just chattier.
// comp is the negotiated compression algorithm (v4 extension, trailing so
// a v3 dialer stops after delivered and stays uncompressed). shards is the
// acceptor's shard count and shardDelivered its per-shard delivered
// watermarks for the dialer's origin (v5 extension; a sharded dialer needs
// one watermark per independent seq domain, the first of which duplicates
// the v3 delivered field so older dialers keep their pre-ack).
func appendHelloAck(w *wire.Writer, codec wire.CodecID, delivered uint64, comp uint64, shards uint64, shardDelivered []uint64) {
	w.Uvarint(tHelloAck)
	w.Uvarint(helloVersion)
	w.Uvarint(uint64(codec))
	w.Uvarint(delivered)
	w.Uvarint(comp)
	w.Uvarint(shards)
	w.Uvarint(uint64(len(shardDelivered)))
	for _, d := range shardDelivered {
		w.Uvarint(d)
	}
}

// helloAck carries a decoded tHelloAck.
type helloAck struct {
	Codec          wire.CodecID
	Delivered      uint64
	Comp           uint64
	Shards         uint64
	ShardDelivered []uint64
}

// decodeHelloAck decodes a tHelloAck whose type tag has already been read.
// A v2 ack has no delivered watermark; it decodes as 0, which pre-acks
// nothing. A pre-v4 ack has no compression ID: wire.CompNone. A pre-v5 ack
// has no shard count: 1, with no per-shard watermarks.
func decodeHelloAck(r *wire.Reader) (helloAck, error) {
	a := helloAck{Shards: 1}
	r.Uvarint() // version: informational, the codec field is what binds
	a.Codec = wire.CodecID(r.Uvarint())
	if err := r.Err(); err != nil {
		return a, err
	}
	if r.Remaining() == 0 {
		return a, nil
	}
	a.Delivered = r.Uvarint()
	if err := r.Err(); err != nil {
		return a, err
	}
	if r.Remaining() == 0 {
		return a, nil
	}
	a.Comp = r.Uvarint()
	if err := r.Err(); err != nil {
		return a, err
	}
	if r.Remaining() == 0 {
		return a, nil
	}
	a.Shards = r.Uvarint()
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return a, err
	}
	if n > uint64(r.Remaining()) {
		return a, fmt.Errorf("cluster: implausible shard watermark count %d", n)
	}
	a.ShardDelivered = make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		a.ShardDelivered = append(a.ShardDelivered, r.Uvarint())
	}
	return a, r.Err()
}

// negotiateCodec picks the connection codec from the two ends' preferences:
// the lower ID wins, so a JSON-only end (ID 0) pins the connection to the
// fallback and two binary-capable ends get the compact codec. Unknown IDs
// (a newer peer) degrade to JSON rather than erroring: the fallback is the
// whole point of the negotiation.
func negotiateCodec(a, b wire.CodecID) wire.CodecID {
	chosen := a
	if b < chosen {
		chosen = b
	}
	if _, ok := wire.CodecByID(chosen); !ok {
		return wire.CodecJSON
	}
	return chosen
}

func encodeHello(from model.ReplicaID) []byte {
	w := wire.NewWriter()
	w.Uvarint(tHello)
	w.Uvarint(uint64(from))
	return w.Bytes()
}

// appendUpdate encodes one v1 update frame into w. The payload rides behind
// a uvarint length via Raw — the old String(string(payload)) route copied
// the payload into a string and then into the buffer, twice per update on
// the hot send path.
func appendUpdate(w *wire.Writer, u protoUpdate) {
	w.Uvarint(tUpdate)
	w.Uvarint(uint64(u.Origin))
	w.Uvarint(u.Seq)
	w.Uvarint(u.Lamport)
	w.Uvarint(uint64(len(u.Payload)))
	w.Raw(u.Payload)
}

func encodeUpdate(u protoUpdate) []byte {
	w := wire.NewWriter()
	appendUpdate(w, u)
	return w.Bytes()
}

// decodeUpdate decodes a tUpdate body. The payload is returned as a
// subslice of the frame buffer (zero-copy): the event loop copies it if it
// records it, and replicas copy whatever they retain while decoding.
func decodeUpdate(r *wire.Reader) (protoUpdate, error) {
	u := protoUpdate{
		Origin:  model.ReplicaID(r.Uvarint()),
		Seq:     r.Uvarint(),
		Lamport: r.Uvarint(),
		Payload: r.Bytes(),
	}
	return u, r.Err()
}

// appendBatch encodes a tBatch frame: one origin (a replication link only
// ever carries the dialer's own broadcasts), then each update's seq,
// lamport, and payload. Compared with the same updates as tUpdate frames it
// saves the per-update frame header, type tag, and origin — the framing
// overhead Theorem 12's bytes/op accounting should not be charging to
// metadata.
func appendBatch(w *wire.Writer, origin model.ReplicaID, us []protoUpdate) {
	w.Uvarint(tBatch)
	w.Uvarint(uint64(origin))
	w.Uvarint(uint64(len(us)))
	for _, u := range us {
		w.Uvarint(u.Seq)
		w.Uvarint(u.Lamport)
		w.Uvarint(uint64(len(u.Payload)))
		w.Raw(u.Payload)
	}
}

// decodeBatch decodes a tBatch body. Payloads alias the frame buffer, like
// decodeUpdate's.
func decodeBatch(r *wire.Reader) ([]protoUpdate, error) {
	origin := model.ReplicaID(r.Uvarint())
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Each update costs at least three bytes (seq, lamport, length), but the
	// guard that matters is one value per remaining byte: beyond that the
	// count is corrupt and would allocate unboundedly.
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("cluster: implausible batch count %d", n)
	}
	us := make([]protoUpdate, 0, n)
	for i := uint64(0); i < n; i++ {
		u := protoUpdate{
			Origin:  origin,
			Seq:     r.Uvarint(),
			Lamport: r.Uvarint(),
			Payload: r.Bytes(),
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		us = append(us, u)
	}
	return us, nil
}

// appendShardBatch encodes a tShardBatch frame: the shard index, then the
// same layout as tBatch. Sharded links carry every shard's stream over one
// connection, so the shard index is what routes the frame to the right seq
// domain on the receiving side.
func appendShardBatch(w *wire.Writer, shard int, origin model.ReplicaID, us []protoUpdate) {
	w.Uvarint(tShardBatch)
	w.Uvarint(uint64(shard))
	w.Uvarint(uint64(origin))
	w.Uvarint(uint64(len(us)))
	for _, u := range us {
		w.Uvarint(u.Seq)
		w.Uvarint(u.Lamport)
		w.Uvarint(uint64(len(u.Payload)))
		w.Raw(u.Payload)
	}
}

// decodeShardBatch decodes a tShardBatch body. Payloads alias the frame
// buffer, like decodeBatch's.
func decodeShardBatch(r *wire.Reader) (shard uint64, us []protoUpdate, err error) {
	shard = r.Uvarint()
	if err := r.Err(); err != nil {
		return shard, nil, err
	}
	us, err = decodeBatch(r)
	return shard, us, err
}

func appendShardAck(w *wire.Writer, shard uint64, cum uint64) {
	w.Uvarint(tShardAck)
	w.Uvarint(shard)
	w.Uvarint(cum)
}

func decodeShardAck(r *wire.Reader) (shard, cum uint64, err error) {
	shard = r.Uvarint()
	cum = r.Uvarint()
	return shard, cum, r.Err()
}

func appendAck(w *wire.Writer, cum uint64) {
	w.Uvarint(tAck)
	w.Uvarint(cum)
}

func encodeAck(cum uint64) []byte {
	w := wire.NewWriter()
	appendAck(w, cum)
	return w.Bytes()
}

func encodeRequest(reqID uint64, obj model.ObjectID, op model.Operation) []byte {
	w := wire.NewWriter()
	w.Uvarint(tRequest)
	w.Uvarint(reqID)
	w.String(string(obj))
	w.Uvarint(uint64(op.Kind))
	w.String(string(op.Arg))
	w.Varint(op.Delta)
	return w.Bytes()
}

func decodeRequest(r *wire.Reader) (reqID uint64, obj model.ObjectID, op model.Operation, err error) {
	reqID = r.Uvarint()
	obj = model.ObjectID(r.String())
	op.Kind = model.OpKind(r.Uvarint())
	op.Arg = model.Value(r.String())
	op.Delta = r.Varint()
	return reqID, obj, op, r.Err()
}

func encodeResponse(reqID uint64, resp model.Response) []byte {
	w := wire.NewWriter()
	w.Uvarint(tResponse)
	w.Uvarint(reqID)
	b := uint64(0)
	if resp.OK {
		b = 1
	}
	w.Uvarint(b)
	w.Varint(resp.Count)
	if resp.Values == nil {
		w.Uvarint(0)
	} else {
		w.Uvarint(1)
		w.Uvarint(uint64(len(resp.Values)))
		for _, v := range resp.Values {
			w.String(string(v))
		}
	}
	return w.Bytes()
}

func decodeResponse(r *wire.Reader) (reqID uint64, resp model.Response, err error) {
	reqID = r.Uvarint()
	resp.OK = r.Uvarint() == 1
	resp.Count = r.Varint()
	if r.Uvarint() == 1 {
		n := r.Uvarint()
		if err := r.Err(); err != nil {
			return reqID, resp, err
		}
		// Every value costs at least its one-byte length prefix, so a valid
		// count never exceeds the bytes left. (The previous guard allowed
		// Remaining+1 — one more value than the buffer can possibly hold.)
		if n > uint64(r.Remaining()) {
			return reqID, resp, fmt.Errorf("cluster: implausible value count %d", n)
		}
		resp.Values = make([]model.Value, 0, n)
		for i := uint64(0); i < n; i++ {
			resp.Values = append(resp.Values, model.Value(r.String()))
		}
	}
	return reqID, resp, r.Err()
}

// encodeStructuredReq encodes a tStats/tHistory request. The codec field
// trails the bare v1 request, so an old node ignores it and answers JSON; a
// new node answers in the requested codec. The compression offer trails
// the codec the same way (v4): an old node answers raw, a new node may
// wrap a floor-clearing reply (tHistoryRespB) in a tCompressed envelope.
func encodeStructuredReq(typ uint64, codec wire.CodecID, comp uint64) []byte {
	w := wire.NewWriter()
	w.Uvarint(typ)
	w.Uvarint(uint64(codec))
	w.Uvarint(comp)
	return w.Bytes()
}

// encodeStructuredReqShard is encodeStructuredReq with a trailing shard
// index (v5): a tHistory request for one shard's projection. Old nodes stop
// reading after the compression offer and answer their whole (single-shard)
// history, which is exactly shard 0's projection.
func encodeStructuredReqShard(typ uint64, codec wire.CodecID, comp uint64, shard uint64) []byte {
	w := wire.NewWriter()
	w.Uvarint(typ)
	w.Uvarint(uint64(codec))
	w.Uvarint(comp)
	w.Uvarint(shard)
	return w.Bytes()
}

func encodeEmpty(typ uint64) []byte {
	w := wire.NewWriter()
	w.Uvarint(typ)
	return w.Bytes()
}

// appendJSON encodes a structured-transfer frame holding a JSON body,
// appending the body bytes once via Raw.
func appendJSON(w *wire.Writer, typ uint64, data []byte) {
	w.Uvarint(typ)
	w.Uvarint(uint64(len(data)))
	w.Raw(data)
}

func encodeJSON(typ uint64, data []byte) []byte {
	w := wire.NewWriter()
	appendJSON(w, typ, data)
	return w.Bytes()
}
