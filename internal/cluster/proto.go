package cluster

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/wire"
)

// Frame types of the cluster protocol. Every frame is a wire.WriteFrame
// length-delimited payload whose first uvarint is the type; the rest is
// type-specific, encoded with the repository's varint codec.
//
// Replication connections are directional: the broadcasting node dials its
// peer, opens with tHello, and streams tUpdate frames in seq order; the
// accepting side answers each applied update with a cumulative tAck on the
// same connection. Client connections skip the hello and speak
// request/response pairs.
const (
	tHello       = 1 // {from}                      replica → peer, opens a replication conn
	tUpdate      = 2 // {origin, seq, lamport, payload}
	tAck         = 3 // {cumSeq}                    cumulative ack of the dialer's updates
	tRequest     = 4 // {reqID, obj, kind, arg, delta}
	tResponse    = 5 // {reqID, ok, count, hasValues, values...}
	tStats       = 6 // {}
	tStatsResp   = 7 // {json}
	tHistory     = 8 // {}
	tHistoryResp = 9 // {json}
)

// historyMaxFrame is the frame limit for history transfers, which carry a
// whole recorded execution and dwarf every other frame.
const historyMaxFrame = 64 << 20

type protoUpdate struct {
	Origin  model.ReplicaID
	Seq     uint64
	Lamport uint64
	Payload []byte
}

func encodeHello(from model.ReplicaID) []byte {
	w := wire.NewWriter()
	w.Uvarint(tHello)
	w.Uvarint(uint64(from))
	return w.Bytes()
}

func encodeUpdate(u protoUpdate) []byte {
	w := wire.NewWriter()
	w.Uvarint(tUpdate)
	w.Uvarint(uint64(u.Origin))
	w.Uvarint(u.Seq)
	w.Uvarint(u.Lamport)
	w.String(string(u.Payload))
	return w.Bytes()
}

func decodeUpdate(r *wire.Reader) (protoUpdate, error) {
	u := protoUpdate{
		Origin:  model.ReplicaID(r.Uvarint()),
		Seq:     r.Uvarint(),
		Lamport: r.Uvarint(),
		Payload: []byte(r.String()),
	}
	return u, r.Err()
}

func encodeAck(cum uint64) []byte {
	w := wire.NewWriter()
	w.Uvarint(tAck)
	w.Uvarint(cum)
	return w.Bytes()
}

func encodeRequest(reqID uint64, obj model.ObjectID, op model.Operation) []byte {
	w := wire.NewWriter()
	w.Uvarint(tRequest)
	w.Uvarint(reqID)
	w.String(string(obj))
	w.Uvarint(uint64(op.Kind))
	w.String(string(op.Arg))
	w.Varint(op.Delta)
	return w.Bytes()
}

func decodeRequest(r *wire.Reader) (reqID uint64, obj model.ObjectID, op model.Operation, err error) {
	reqID = r.Uvarint()
	obj = model.ObjectID(r.String())
	op.Kind = model.OpKind(r.Uvarint())
	op.Arg = model.Value(r.String())
	op.Delta = r.Varint()
	return reqID, obj, op, r.Err()
}

func encodeResponse(reqID uint64, resp model.Response) []byte {
	w := wire.NewWriter()
	w.Uvarint(tResponse)
	w.Uvarint(reqID)
	b := uint64(0)
	if resp.OK {
		b = 1
	}
	w.Uvarint(b)
	w.Varint(resp.Count)
	if resp.Values == nil {
		w.Uvarint(0)
	} else {
		w.Uvarint(1)
		w.Uvarint(uint64(len(resp.Values)))
		for _, v := range resp.Values {
			w.String(string(v))
		}
	}
	return w.Bytes()
}

func decodeResponse(r *wire.Reader) (reqID uint64, resp model.Response, err error) {
	reqID = r.Uvarint()
	resp.OK = r.Uvarint() == 1
	resp.Count = r.Varint()
	if r.Uvarint() == 1 {
		n := r.Uvarint()
		if err := r.Err(); err != nil {
			return reqID, resp, err
		}
		if n > uint64(r.Remaining())+1 {
			return reqID, resp, fmt.Errorf("cluster: implausible value count %d", n)
		}
		resp.Values = make([]model.Value, 0, n)
		for i := uint64(0); i < n; i++ {
			resp.Values = append(resp.Values, model.Value(r.String()))
		}
	}
	return reqID, resp, r.Err()
}

func encodeEmpty(typ uint64) []byte {
	w := wire.NewWriter()
	w.Uvarint(typ)
	return w.Bytes()
}

func encodeJSON(typ uint64, data []byte) []byte {
	w := wire.NewWriter()
	w.Uvarint(typ)
	w.String(string(data))
	return w.Bytes()
}
