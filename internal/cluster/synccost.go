package cluster

import (
	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/wire"
)

// This file is the deterministic measurement surface behind cmd/loadgen
// -syncbench, companion to benchwire.go: the cost of a Merkle anti-entropy
// catch-up is a pure function of the donor's log and the joiner's prefix,
// so it is computed on the encode paths alone — the same appenders and the
// same chunking rule serveRange and pullRange use — with no sockets or
// timers. The tracked BENCH_SYNC.json must be byte-identical across runs
// of the same flags and seed.

// SyncCostRow quantifies one catch-up scenario: a joiner holding the first
// Prefix of the donor's Updates origin-0 log, pulling under a credit
// window of Window chunks.
type SyncCostRow struct {
	// Updates is the donor's log size, Prefix what the joiner already has.
	Updates int
	Prefix  int
	// Window is the credit window the pull runs under (1 = stop-and-wait).
	// Bytes on the wire are window-independent — the window pipelines the
	// same frames — so only RTTs varies with it.
	Window int
	// DigestBytes is the membership handshake cost: the joiner's tDigest
	// frame plus the donor's tDigestResp (counts, roots, and the prefix
	// root that proves the joiner's log is a clean prefix).
	DigestBytes int64
	// Pulled/Chunks/PulledBytes are the range-transfer cost: missing
	// updates shipped, chunks used, and total wire bytes (tRangeReq +
	// tRangeResp frames + the joiner's journal-backed acks).
	Pulled      int64
	Chunks      int64
	PulledBytes int64
	// RTTs is the transfer's round-trip count: one for the range request
	// plus one per window of journal-acked chunks, 1+⌈Chunks/Window⌉ —
	// the latency the credit window actually buys down (stop-and-wait
	// pays 1+Chunks). Zero when nothing needs pulling.
	RTTs int64
	// FullBytes is the same transfer without anti-entropy: the whole log
	// shipped through the identical chunking. The tracked ratio
	// PulledBytes/FullBytes is the paper-relevant saving — catch-up work
	// proportional to what was missed, not to history length.
	FullBytes int64
}

const syncFrameHeader = 4 // length prefix writeFrame puts on every frame

// frameLen measures one frame built by an appender, header included.
func frameLen(build func(*wire.Writer)) int64 {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	build(w)
	return int64(len(w.Bytes())) + syncFrameHeader
}

// rangeCost models serveRange's chunking exactly: chunks of up to chunkMax
// updates, each capped at MaxFrame-64 bytes of payload cost (payload+32
// per update), one tRangeReq ahead and one tAck behind every tRangeResp.
func rangeCost(us []protoUpdate, from int, chunkMax, maxFrame int) (pulled, chunks, bytes int64) {
	if from >= len(us) {
		return 0, 0, 0
	}
	bytes += frameLen(func(w *wire.Writer) {
		appendRangeReq(w, 0, uint64(from), uint64(len(us)-from), 1)
	})
	idx := from
	for idx < len(us) {
		size := 0
		chunk := []protoUpdate(nil)
		for i := idx; i < len(us); i++ {
			cost := len(us[i].Payload) + 32
			if len(chunk) > 0 && (len(chunk) >= chunkMax || size+cost > maxFrame-64) {
				break
			}
			size += cost
			chunk = append(chunk, us[i])
		}
		bytes += frameLen(func(w *wire.Writer) { appendRangeResp(w, 0, chunk) })
		bytes += frameLen(func(w *wire.Writer) { appendAck(w, chunk[len(chunk)-1].Seq) })
		pulled += int64(len(chunk))
		chunks++
		idx += len(chunk)
	}
	return pulled, chunks, bytes
}

// SyncCost computes the catch-up cost table entry for a joiner holding the
// first prefix updates of a donor log made of the given payloads (origin
// 0, consecutive sequence numbers — the BenchUpdates shape). chunkMax and
// maxFrame correspond to the negotiated BatchMax and MaxFrame; chunkMax 1
// is the JSON floor. window is the pull's credit window (Config.SyncWindow);
// window 1 models the pre-v4 stop-and-wait protocol.
func SyncCost(payloads [][]byte, prefix, chunkMax, maxFrame, window int) SyncCostRow {
	if chunkMax < 1 {
		chunkMax = 1
	}
	if maxFrame <= 0 {
		maxFrame = wire.DefaultMaxFrame
	}
	if window < 1 {
		window = 1
	}
	if prefix > len(payloads) {
		prefix = len(payloads)
	}
	us := []protoUpdate(NewBenchUpdates(payloads))

	donor := membership.NewForest(1)
	joiner := membership.NewForest(1)
	for i, u := range us {
		donor.Append(0, u.Seq, u.Payload)
		if i < prefix {
			joiner.Append(0, u.Seq, u.Payload)
		}
	}
	row := SyncCostRow{Updates: len(us), Prefix: prefix, Window: window}
	jd := []originDigest{{Origin: model.ReplicaID(0), Count: joiner.Count(0), Root: joiner.Root(0)}}
	dd := []originDigest{{
		Origin: model.ReplicaID(0), Count: donor.Count(0), Root: donor.Root(0),
		PrefixRoot: donor.PrefixRoot(0, joiner.Count(0)),
	}}
	row.DigestBytes = frameLen(func(w *wire.Writer) { appendDigest(w, tDigest, jd) }) +
		frameLen(func(w *wire.Writer) { appendDigest(w, tDigestResp, dd) })
	row.Pulled, row.Chunks, row.PulledBytes = rangeCost(us, prefix, chunkMax, maxFrame)
	if row.Chunks > 0 {
		row.RTTs = 1 + (row.Chunks+int64(window)-1)/int64(window)
	}
	_, _, row.FullBytes = rangeCost(us, 0, chunkMax, maxFrame)
	return row
}
