package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

// TestStatsCoherentSnapshot is the regression for the torn Stats read: the
// op counter used to advance in the caller's goroutine (inside Do) while
// the event append happened later in the node's loop, so a concurrent
// Stats call could observe an op whose event did not exist yet. Stats now
// captures everything in one loop turn, and for a node that never restored
// a prior history the ledger must balance exactly: every recorded event is
// an op, a send, or a receive. Run under -race this also proves Stats
// takes no unsynchronized reads of loop-owned state.
func TestStatsCoherentSnapshot(t *testing.T) {
	nodes := startCluster(t, "causal", 2)
	nd := nodes[0]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := model.Value(fmt.Sprintf("s%d.%d", w, i))
				if _, err := nd.Do("x", model.Write(v)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Writes at the peer too, so the polled node's receive path is live
	// while snapshots are taken.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := model.Value(fmt.Sprintf("p%d", i))
			if _, err := nodes[1].Do("y", model.Write(v)); err != nil {
				t.Errorf("peer writer: %v", err)
				return
			}
		}
	}()

	deadline := time.Now().Add(250 * time.Millisecond)
	snapshots := 0
	for time.Now().Before(deadline) {
		st := nd.Stats()
		if st.Events != st.Ops+st.Sends+st.Receives {
			close(stop)
			t.Fatalf("torn snapshot: events=%d != ops=%d + sends=%d + receives=%d",
				st.Events, st.Ops, st.Sends, st.Receives)
		}
		snapshots++
	}
	close(stop)
	wg.Wait()
	if snapshots == 0 {
		t.Fatal("no snapshots taken")
	}

	// Quiesced ledger still balances, and closed nodes degrade to the
	// counter-only snapshot instead of erroring or racing.
	if !WaitQuiesced(nodes, 30*time.Second) {
		t.Fatal("did not quiesce")
	}
	st := nd.Stats()
	if st.Events != st.Ops+st.Sends+st.Receives {
		t.Fatalf("torn quiesced snapshot: %+v", st)
	}
	nd.Close()
	closed := nd.Stats()
	if closed.Ops != st.Ops || closed.Events != 0 {
		t.Fatalf("closed-node snapshot: ops=%d (want %d), events=%d (want 0)",
			closed.Ops, st.Ops, closed.Events)
	}
}
