package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/model"
)

// ErrNodeDown is returned for operations routed to a crashed node.
var ErrNodeDown = fmt.Errorf("cluster: node is down (crashed by the fault schedule)")

// Supervisor owns one in-process cluster under a fault schedule: it boots
// the nodes with a shared fault.Netem on every link, applies link
// directives to the emulator, and enforces crash/restart directives by
// stopping a node (capturing its recorded history — the durable log of the
// fail-stop model) and rejoining it on the same address with
// Config.Restore. When base.Storage is set, the histories instead live on
// disk: crash closes the incarnation (flushing its journal) and restart
// recovers from the data directory through the same durable.Open path a
// kill -9'd served process takes — nothing is handed through memory.
// Leave/join directives exercise the membership path instead: leave
// retires the node gracefully (gossiped departure releases the peers'
// retransmission obligations), join boots a fresh incarnation that
// rejoins through tJoin and Merkle anti-entropy catch-up. Client traffic
// routes through Do, which fails fast with ErrNodeDown during a victim's
// downtime.
type Supervisor struct {
	base  Config
	em    *fault.Netem
	tick  time.Duration
	addrs []string

	mu        sync.Mutex
	nodes     []*Node   // nil while crashed or departed
	snapshots []History // last pre-crash history per node
	left      []bool    // departed by a leave directive; a rejoin goroutine owns the slot
	crashes   int
	restarts  int
	leaves    int
	joins     int

	// joinWG tracks in-flight rejoin goroutines. Rejoining blocks until a
	// live seed admits the node, and a churn window may overlap other
	// nodes' crash windows, so joins run off the schedule loop and are
	// awaited only after every crashed node is back up.
	joinWG  sync.WaitGroup
	joinErr error
}

// NewSupervisor boots an n-node full-mesh cluster of base.Store replicas on
// loopback, every link shaped by em. The base config supplies the store,
// seed, and timing knobs; ID/N/Listen/Peers/Faults are filled in per node.
// tick maps schedule steps to wall time.
func NewSupervisor(base Config, n int, em *fault.Netem, tick time.Duration) (*Supervisor, error) {
	if base.Store == nil {
		return nil, fmt.Errorf("cluster: supervisor needs a store")
	}
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	s := &Supervisor{
		base:      base,
		em:        em,
		tick:      tick,
		nodes:     make([]*Node, n),
		snapshots: make([]History, n),
		left:      make([]bool, n),
		addrs:     make([]string, n),
	}
	for i := 0; i < n; i++ {
		cfg := base
		cfg.ID = model.ReplicaID(i)
		cfg.N = n
		cfg.Listen = "127.0.0.1:0"
		cfg.Peers = nil
		cfg.Faults = em
		cfg.Restore = nil
		nd, err := NewNode(cfg)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.nodes[i] = nd
		s.addrs[i] = nd.Addr()
	}
	for i, nd := range s.nodes {
		if err := nd.Connect(s.peersOf(i)); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

func (s *Supervisor) peersOf(i int) map[model.ReplicaID]string {
	peers := make(map[model.ReplicaID]string)
	for j, addr := range s.addrs {
		if j != i {
			peers[model.ReplicaID(j)] = addr
		}
	}
	return peers
}

// Do routes one client operation to node i's current incarnation.
func (s *Supervisor) Do(i int, obj model.ObjectID, op model.Operation) (model.Response, error) {
	s.mu.Lock()
	nd := s.nodes[i]
	s.mu.Unlock()
	if nd == nil {
		return model.Response{}, ErrNodeDown
	}
	return nd.Do(obj, op)
}

// Doer adapts node i to the cluster.Doer interface (routing through the
// supervisor so restarts are transparent to convergence checks).
func (s *Supervisor) Doer(i int) Doer { return supervisorDoer{s: s, i: i} }

type supervisorDoer struct {
	s *Supervisor
	i int
}

func (d supervisorDoer) Do(obj model.ObjectID, op model.Operation) (model.Response, error) {
	return d.s.Do(d.i, obj, op)
}

// Nodes snapshots the current live incarnations (crashed slots omitted).
func (s *Supervisor) Nodes() []*Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Node, 0, len(s.nodes))
	for _, nd := range s.nodes {
		if nd != nil {
			out = append(out, nd)
		}
	}
	return out
}

// Crashes reports how many crash and restart directives were enforced.
func (s *Supervisor) Crashes() (crashes, restarts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashes, s.restarts
}

// Churn reports how many leave and (completed) join directives were
// enforced.
func (s *Supervisor) Churn() (leaves, joins int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaves, s.joins
}

// Histories downloads every live node's recorded history (restored events
// included). Call after the schedule completed, when every node is up.
func (s *Supervisor) Histories() ([]History, error) {
	s.mu.Lock()
	nodes := append([]*Node(nil), s.nodes...)
	s.mu.Unlock()
	hists := make([]History, 0, len(nodes))
	for i, nd := range nodes {
		if nd == nil {
			return nil, fmt.Errorf("cluster: node %d still down; histories incomplete", i)
		}
		hists = append(hists, nd.History())
	}
	return hists, nil
}

// RunSchedule enforces the schedule in real time: directive step k fires at
// k×tick after the call. Link directives go to the emulator; crash stops
// the victim (capturing its history) and restart rejoins it from that
// history on its original address. The network is healed and every victim
// restarted when RunSchedule returns, even if the schedule left windows
// open, so callers can always proceed to quiescence and audit.
func (s *Supervisor) RunSchedule(sched fault.Schedule) error {
	start := time.Now()
	var firstErr error
	for _, d := range sched.Directives {
		due := time.Duration(d.Step) * s.tick
		if wait := due - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		if err := s.apply(d); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.em.Heal()
	// Crashed nodes first: an in-flight rejoin may be waiting for one of
	// them to come back as a seed, so the wait must come after.
	if err := s.restartAll(); err != nil && firstErr == nil {
		firstErr = err
	}
	s.joinWG.Wait()
	s.mu.Lock()
	if s.joinErr != nil && firstErr == nil {
		firstErr = s.joinErr
	}
	s.mu.Unlock()
	s.base.Observer.Finish(sched.Steps)
	return firstErr
}

func (s *Supervisor) apply(d fault.Directive) error {
	s.base.Observer.Directive(d)
	switch d.Kind {
	case fault.KindCrash:
		return s.crash(d.Node)
	case fault.KindRestart:
		return s.restart(d.Node)
	case fault.KindLeave:
		return s.leave(d.Node)
	case fault.KindJoin:
		s.joinWG.Add(1)
		go func() {
			defer s.joinWG.Done()
			if err := s.rejoin(d.Node); err != nil {
				s.mu.Lock()
				if s.joinErr == nil {
					s.joinErr = err
				}
				s.mu.Unlock()
			}
		}()
		return nil
	default:
		s.em.Apply(d, s.tick)
		return nil
	}
}

// crash fail-stops node i: its recorded history is the durable state that
// survives; its sockets, queues, and connections die with it.
func (s *Supervisor) crash(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.nodes) || s.nodes[i] == nil {
		return fmt.Errorf("cluster: crash directive for invalid or already-down node %d", i)
	}
	nd := s.nodes[i]
	s.nodes[i] = nil
	s.crashes++
	// Stop the node BEFORE capturing its history. The previous order
	// (snapshot, then close) left a window in which the still-running event
	// loop kept applying and acknowledging peer updates that the snapshot
	// had already missed: the sender pruned them as acked, the restarted
	// node had never seen them, and the resulting sequence gap could never
	// be filled — with two victims down at once the cluster wedged
	// permanently short of quiescence.
	nd.Close()
	if s.base.Storage == nil {
		s.snapshots[i] = nd.FinalHistory()
	}
	// Disk-backed mode: Close flushed and closed the journal; restart
	// recovers from the data directory, exactly like a killed process.
	return nil
}

// restart rejoins node i on its original address, reloading the history
// captured at crash time. The listen port can linger briefly after the old
// incarnation's sockets close, so binding retries for a moment.
func (s *Supervisor) restart(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.nodes) || s.nodes[i] != nil {
		return fmt.Errorf("cluster: restart directive for invalid or already-up node %d", i)
	}
	cfg := s.base
	cfg.ID = model.ReplicaID(i)
	cfg.N = len(s.nodes)
	cfg.Listen = s.addrs[i]
	cfg.Peers = nil
	cfg.Faults = s.em
	if cfg.Storage == nil {
		snap := s.snapshots[i]
		cfg.Restore = &snap
	}

	var nd *Node
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		nd, err = NewNode(cfg)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("cluster: restart node %d: %w", i, err)
	}
	if err := nd.Connect(s.peersOf(i)); err != nil {
		nd.Close()
		return fmt.Errorf("cluster: reconnect node %d: %w", i, err)
	}
	s.nodes[i] = nd
	s.restarts++
	return nil
}

// leave retires node i gracefully: it announces its departure (releasing
// peers' retransmission obligations for it), then stops. Its history is
// captured the same way a crash captures it — the rejoin directive brings
// it back through the membership path, where anti-entropy catch-up fills
// whatever the snapshot missed.
func (s *Supervisor) leave(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.nodes) || s.nodes[i] == nil {
		return fmt.Errorf("cluster: leave directive for invalid or already-down node %d", i)
	}
	nd := s.nodes[i]
	s.nodes[i] = nil
	s.left[i] = true
	s.leaves++
	if err := nd.Leave(); err != nil {
		nd.Close()
		return fmt.Errorf("cluster: leave node %d: %w", i, err)
	}
	nd.Close()
	if s.base.Storage == nil {
		s.snapshots[i] = nd.FinalHistory()
	}
	return nil
}

// rejoin brings a departed node back through the membership path: a fresh
// incarnation on the original address, seeded with every other node's
// address, that announces itself with tJoin and catches up via Merkle
// anti-entropy before replicating. NewNode blocks until a seed admits it,
// so rejoin runs on a goroutine spawned by apply.
func (s *Supervisor) rejoin(i int) error {
	s.mu.Lock()
	if i < 0 || i >= len(s.nodes) || s.nodes[i] != nil || !s.left[i] {
		s.mu.Unlock()
		return fmt.Errorf("cluster: join directive for invalid or non-departed node %d", i)
	}
	cfg := s.base
	cfg.ID = model.ReplicaID(i)
	cfg.N = len(s.nodes)
	cfg.Listen = s.addrs[i]
	cfg.Peers = nil
	cfg.Join = s.peersOf(i)
	cfg.Faults = s.em
	if cfg.Storage == nil {
		snap := s.snapshots[i]
		cfg.Restore = &snap
	}
	s.mu.Unlock()

	var nd *Node
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		nd, err = NewNode(cfg)
		if err == nil || errors.Is(err, errJoinRefused) {
			break // a refusal is permanent; only the port bind is worth retrying
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("cluster: rejoin node %d: %w", i, err)
	}
	s.mu.Lock()
	s.nodes[i] = nd
	s.left[i] = false
	s.joins++
	s.mu.Unlock()
	return nil
}

// restartAll rejoins any crashed node still down (defensive tail for
// truncated schedules). Departed slots are skipped: their rejoin
// goroutines own them, and RunSchedule waits those out separately.
func (s *Supervisor) restartAll() error {
	s.mu.Lock()
	down := []int{}
	for i, nd := range s.nodes {
		if nd == nil && !s.left[i] {
			down = append(down, i)
		}
	}
	s.mu.Unlock()
	for _, i := range down {
		if err := s.restart(i); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts every live node down.
func (s *Supervisor) Close() {
	s.mu.Lock()
	nodes := append([]*Node(nil), s.nodes...)
	for i := range s.nodes {
		s.nodes[i] = nil
	}
	s.mu.Unlock()
	for _, nd := range nodes {
		if nd != nil {
			nd.Close()
		}
	}
}
