package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"

	_ "repro/internal/store/lww"
)

func startPoolNode(t *testing.T) *Node {
	t.Helper()
	st, err := store.Open("lww", spec.MVRTypes(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nd, err := NewNode(fastConfig(0, 1, st))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.Close() })
	if err := nd.Connect(nil); err != nil {
		t.Fatal(err)
	}
	return nd
}

// TestPoolConcurrentOps drives many goroutines through a small pool: every
// operation must succeed and land on the node, and the pool must never open
// more than Size connections.
func TestPoolConcurrentOps(t *testing.T) {
	nd := startPoolNode(t)
	pool, err := NewPool(nd.Addr(), PoolOptions{Size: 3, OpTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const workers = 12
	const opsPerWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				obj := model.ObjectID(fmt.Sprintf("obj%d", i%4))
				if _, err := pool.Do(obj, model.Write(model.Value(fmt.Sprintf("w%d.%d", w, i)))); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	s, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// workers*opsPerWorker writes plus this Stats call went through; the
	// ops counter must show every write.
	if s.Ops < workers*opsPerWorker {
		t.Fatalf("node saw %d ops, want >= %d", s.Ops, workers*opsPerWorker)
	}
	if _, err := pool.History(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolRedialsAfterNodeRestart: an operation error discards the pooled
// connection, so the next checkout redials — the pool heals from a node
// restart without any external intervention.
func TestPoolRedialsAfterNodeRestart(t *testing.T) {
	st, err := store.Open("lww", spec.MVRTypes(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nd, err := NewNode(fastConfig(0, 1, st))
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Connect(nil); err != nil {
		t.Fatal(err)
	}
	addr := nd.Addr()

	pool, err := NewPool(addr, PoolOptions{Size: 2, OpTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Do("x", model.Write("before")); err != nil {
		t.Fatal(err)
	}

	// Kill the node: the pooled connections are now dead.
	nd.Close()

	// Restart on the same address.
	st2, err := store.Open("lww", spec.MVRTypes(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(0, 1, st2)
	cfg.Listen = addr
	nd2, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd2.Close() })
	if err := nd2.Connect(nil); err != nil {
		t.Fatal(err)
	}

	// The pool's Size connections are stale; within a few attempts every
	// slot is discarded and redialed against the new node.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := pool.Do("x", model.Write("after")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never healed after node restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPoolClose: operations after Close fail with ErrPoolClosed, waiters
// blocked on a slot are released, and Close is idempotent.
func TestPoolClose(t *testing.T) {
	nd := startPoolNode(t)
	pool, err := NewPool(nd.Addr(), PoolOptions{Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Do("x", model.Write("v")); err != nil {
		t.Fatal(err)
	}

	// Hold the only slot so a second caller blocks, then Close: the waiter
	// must come back with ErrPoolClosed, not hang.
	c, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	waiter := make(chan error, 1)
	go func() {
		_, err := pool.Do("x", model.Write("blocked"))
		waiter <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter block on the slot
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-waiter:
		if err != ErrPoolClosed {
			t.Fatalf("waiter error = %v, want ErrPoolClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release the blocked waiter")
	}
	pool.release(c, nil) // in-flight checkout returns after Close: closed, not leaked

	if _, err := pool.Do("x", model.Write("v2")); err != ErrPoolClosed {
		t.Fatalf("Do after Close = %v, want ErrPoolClosed", err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolLazyDial: a pool to a dead address constructs fine and only
// errors when used.
func TestPoolLazyDial(t *testing.T) {
	pool, err := NewPool("127.0.0.1:1", PoolOptions{Size: 2, DialTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Do("x", model.Write("v")); err == nil {
		t.Fatal("Do against a dead address succeeded")
	}
	// The failed dial must return its slot: a second attempt still gets a
	// slot (and fails the same way) rather than deadlocking.
	done := make(chan struct{})
	go func() {
		defer close(done)
		pool.Do("x", model.Write("v"))
		pool.Do("x", model.Write("v"))
		pool.Do("x", model.Write("v"))
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("failed dials leaked pool slots")
	}
}

// TestPoolCloseRacesCheckout is the regression for the release/Close race:
// release checked p.closed under the lock but sent the slot back after
// dropping it, so a Close that set the flag and drained free in that window
// left the late-returned live connection parked in the channel forever — a
// leaked socket per racing checkout. After Close and every in-flight
// operation have settled, the free channel must hold no live connection.
func TestPoolCloseRacesCheckout(t *testing.T) {
	nd := startPoolNode(t)
	seed, err := Dial(nd.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	pool, err := NewPool(nd.Addr(), PoolOptions{Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-pool.free // take the empty slot like a checkout, without the dial

	// Stall release exactly where the old code dropped p.mu before sending
	// the slot back, and fire Close into that window. With check and send in
	// one critical section Close must block until the slot is home and then
	// drain it; the old sequence let Close finish draining first, so the
	// late send parked the live connection in free forever.
	inWindow := make(chan struct{})
	proceed := make(chan struct{})
	testPoolReleaseGap = func() {
		close(inWindow)
		<-proceed
	}
	defer func() { testPoolReleaseGap = nil }()

	releaseDone := make(chan struct{})
	go func() {
		defer close(releaseDone)
		pool.release(seed, nil)
	}()
	<-inWindow
	closeDone := make(chan struct{})
	go func() {
		defer close(closeDone)
		pool.Close()
	}()
	// Give Close every chance to run: pre-fix it completes inside the
	// window; post-fix it is parked on p.mu until release finishes.
	time.Sleep(50 * time.Millisecond)
	close(proceed)
	<-releaseDone
	<-closeDone

	select {
	case leaked := <-pool.free:
		if leaked != nil {
			t.Fatal("live connection leaked into the closed pool's free channel")
		}
	default:
	}
}
