package cluster

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/wire"
)

// TestMaybeCompressPayloadGates pins the three write-side gates: negotiated
// algorithm, size floor, and an actual size win. Only a floor-clearing
// compressible payload on a flate connection gets the envelope.
func TestMaybeCompressPayloadGates(t *testing.T) {
	big := bytes.Repeat([]byte("abcdefgh"), 256) // 2 KiB, highly compressible
	if env := maybeCompressPayload(big, wire.CompNone); env != nil {
		wire.PutWriter(env)
		t.Fatal("compressed on a CompNone connection")
	}
	if env := maybeCompressPayload(big[:compressFloor-1], wire.CompFlate); env != nil {
		wire.PutWriter(env)
		t.Fatal("compressed a sub-floor payload")
	}
	env := maybeCompressPayload(big, wire.CompFlate)
	if env == nil {
		t.Fatal("did not compress a floor-clearing compressible payload")
	}
	if env.Len() >= len(big) {
		t.Fatalf("envelope %d bytes did not beat raw %d", env.Len(), len(big))
	}
	got, err := decompressFrame(append([]byte(nil), env.Bytes()...), 0)
	wire.PutWriter(env)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("envelope did not round-trip: err %v", err)
	}
}

// TestDecompressFramePassthrough: a non-envelope frame must come back
// unchanged — every read path calls decompressFrame unconditionally.
func TestDecompressFramePassthrough(t *testing.T) {
	w := wire.NewWriter()
	appendAck(w, 42)
	got, err := decompressFrame(w.Bytes(), 0)
	if err != nil || !bytes.Equal(got, w.Bytes()) {
		t.Fatalf("passthrough mangled frame: %x err %v", got, err)
	}
	if got, err := decompressFrame(nil, 0); err != nil || len(got) != 0 {
		t.Fatalf("empty frame: %x err %v", got, err)
	}
}

// TestDecompressFrameHostileEnvelopes: truncated headers, unknown
// algorithms, oversize declarations, and corrupt deflate bodies must all
// error without panicking or over-allocating.
func TestDecompressFrameHostileEnvelopes(t *testing.T) {
	env := func(build func(w *wire.Writer)) []byte {
		w := wire.NewWriter()
		w.Uvarint(tCompressed)
		build(w)
		return w.Bytes()
	}
	if _, err := decompressFrame(env(func(w *wire.Writer) { w.Uvarint(wire.CompFlate) }), 0); err == nil {
		t.Fatal("truncated envelope header accepted")
	}
	if _, err := decompressFrame(env(func(w *wire.Writer) {
		w.Uvarint(99)
		w.Uvarint(10)
	}), 0); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	var fse *wire.FrameSizeError
	_, err := decompressFrame(env(func(w *wire.Writer) {
		w.Uvarint(wire.CompFlate)
		w.Uvarint(1 << 40) // declared inflated size far past any frame limit
	}), 1<<20)
	if !errors.As(err, &fse) {
		t.Fatalf("oversize declaration error = %v, want FrameSizeError", err)
	}
	if _, err := decompressFrame(env(func(w *wire.Writer) {
		w.Uvarint(wire.CompFlate)
		w.Uvarint(16)
		w.Raw([]byte{0xff, 0xff, 0xff}) // not a deflate stream
	}), 0); err == nil {
		t.Fatal("corrupt deflate body accepted")
	}
}

// FuzzDecompressFrame throws arbitrary bytes at the envelope unwrapper: it
// must never panic, never allocate past the frame limit, and anything it
// passes through or inflates must be stable under a second call.
func FuzzDecompressFrame(f *testing.F) {
	big := bytes.Repeat([]byte("abcdefgh"), 256)
	if env := maybeCompressPayload(big, wire.CompFlate); env != nil {
		f.Add(append([]byte(nil), env.Bytes()...))
		wire.PutWriter(env)
	}
	w := wire.NewWriter()
	appendAck(w, 7)
	f.Add(append([]byte(nil), w.Bytes()...))
	f.Add([]byte{})
	f.Add([]byte{tCompressed})
	f.Add([]byte{tCompressed, 1, 4, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		const maxFrame = 1 << 16
		got, err := decompressFrame(b, maxFrame)
		if err != nil {
			return
		}
		if len(got) > maxFrame {
			t.Fatalf("inflated %d bytes past the %d frame limit", len(got), maxFrame)
		}
		// A decompressed frame is a plain frame: a second unwrap of a
		// non-envelope result must be the identity. (An inflated body that
		// itself starts with tCompressed is legal input; skip those.)
		r := wire.NewReader(got)
		if typ := r.Uvarint(); r.Err() == nil && typ == tCompressed {
			return
		}
		again, err := decompressFrame(got, maxFrame)
		if err != nil || !bytes.Equal(again, got) {
			t.Fatalf("unwrap not stable: err %v", err)
		}
	})
}

// TestCompressShrinkFailKeepsCallerBuffer is the regression for the pooled
// writer discipline on the compression-floor boundary. A tBatch that sits
// right at the floor, filled with incompressible bytes, fails the shrink
// check inside maybeCompressPayload — the path where the function discards
// its envelope writer. The caller's batch frame still lives in a pooled
// writer the caller has NOT returned, so nothing maybeCompressPayload puts
// back may alias it: a recycled aliasing writer would let the next
// GetWriter clobber the frame bytes while the raw send is still reading
// them. Churning the pool after the shrink-fail and checking the frame
// against a snapshot pins exactly that.
func TestCompressShrinkFailKeepsCallerBuffer(t *testing.T) {
	// xorshift-filled bytes do not deflate: stored-block overhead plus the
	// envelope header always lose, so the shrink check fails and the frame
	// ships raw.
	junk := make([]byte, 2048)
	s := uint64(0x9E3779B97F4A7C15)
	for i := range junk {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		junk[i] = byte(s)
	}
	for _, target := range []int{compressFloor - 1, compressFloor, compressFloor + 1} {
		// Size the update so the whole tBatch frame payload lands exactly
		// on target.
		var enc *wire.Writer
		for inner := target; inner > 0; inner-- {
			w := wire.GetWriter()
			appendBatch(w, 1, []protoUpdate{{Origin: 1, Seq: 9, Lamport: 300, Payload: junk[:inner]}})
			if w.Len() == target {
				enc = w
				break
			}
			wire.PutWriter(w)
		}
		if enc == nil {
			t.Fatalf("no batch lands on %d bytes", target)
		}
		payload := enc.Bytes()
		snapshot := append([]byte(nil), payload...)

		env := maybeCompressPayload(payload, wire.CompFlate)
		if env != nil {
			wire.PutWriter(env)
			if target < compressFloor {
				t.Fatalf("sub-floor %d-byte payload compressed", target)
			}
			t.Fatalf("incompressible %d-byte batch cleared the shrink check", target)
		}

		// The caller still holds enc checked out. Drain fresh writers from
		// the pool and fill them: if the shrink-fail path returned a writer
		// aliasing the batch frame, this churn rewrites the frame bytes.
		churn := make([]*wire.Writer, 8)
		for i := range churn {
			churn[i] = wire.GetWriter()
			churn[i].Raw(bytes.Repeat([]byte{0xEE}, target))
		}
		if !bytes.Equal(payload, snapshot) {
			t.Fatalf("target %d: pool churn clobbered the caller's batch frame — an aliasing writer was returned to the pool", target)
		}
		for _, w := range churn {
			wire.PutWriter(w)
		}
		wire.PutWriter(enc)
	}
}
