package cluster

import (
	"fmt"

	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/wire"
)

// Membership and anti-entropy frame types, continuing the numbering in
// proto.go. A join conversation is one connection, joiner-driven:
//
//	joiner → tJoin      {from, epoch, addr, version, codec}
//	donor  → tJoinAck   {version, codec, view}
//	joiner → tDigest    {per-origin count+root}
//	donor  → tDigestResp{per-origin count+root+prefixRoot(joiner count)}
//	joiner → tTreeReq   {origin, prefix, level, index}     (only on mismatch)
//	donor  → tTreeResp  {ok, hash}
//	joiner → tRangeReq  {origin, from, count}
//	donor  → tRangeResp {origin, (seq, lamport, payload)...}  (chunked)
//	joiner → tAck       {cum}          after journaling each chunk
//
// The codec negotiated on the tJoin/tJoinAck pair (same min-wins rule as
// the hello exchange) governs range chunking: a binary connection ships
// tBatch-sized multi-update chunks, the JSON floor ships one update per
// frame — so a v1-style joiner still syncs, just less compactly. Gossip
// frames (tGossip/tGossipAck) are a single request/response exchange on a
// transient connection.
const (
	tJoin       = 14 // {from, epoch, addr, version, codec [, comp]}
	tJoinAck    = 15 // {version, codec, members... [, comp]}
	tGossip     = 16 // {from, members...}
	tGossipAck  = 17 // {members...}
	tDigest     = 18 // {count, (origin, count, root)...}
	tDigestResp = 19 // {count, (origin, count, root, prefixRoot)...}
	tTreeReq    = 20 // {origin, prefix, level, index}
	tTreeResp   = 21 // {ok, hash}
	tRangeReq   = 22 // {origin, from, count [, window]}
	tRangeResp  = 23 // {origin, count, (seq, lamport, payload)...}
	// 24 is tCompressed, the compression envelope — see compress.go.
)

// joinReq carries a decoded tJoin.
type joinReq struct {
	From    model.ReplicaID
	Epoch   uint64
	Addr    string
	Version uint64
	Codec   wire.CodecID
	Comp    uint64
}

func appendJoin(w *wire.Writer, j joinReq) {
	w.Uvarint(tJoin)
	w.Uvarint(uint64(j.From))
	w.Uvarint(j.Epoch)
	w.String(j.Addr)
	w.Uvarint(helloVersion)
	w.Uvarint(uint64(j.Codec))
	w.Uvarint(j.Comp)
}

func decodeJoin(r *wire.Reader) (joinReq, error) {
	j := joinReq{
		From:  model.ReplicaID(r.Uvarint()),
		Epoch: r.Uvarint(),
		Addr:  r.String(),
	}
	j.Version = r.Uvarint()
	j.Codec = wire.CodecID(r.Uvarint())
	if err := r.Err(); err != nil {
		return j, err
	}
	// v4 compression offer; a v3 join ends at the codec → CompNone.
	if r.Remaining() > 0 {
		j.Comp = r.Uvarint()
	}
	return j, r.Err()
}

// appendMembers encodes a view snapshot: {count, (id, epoch, left, addr)...}.
func appendMembers(w *wire.Writer, ms []membership.Member) {
	w.Uvarint(uint64(len(ms)))
	for _, m := range ms {
		w.Uvarint(uint64(m.ID))
		w.Uvarint(m.Epoch)
		l := uint64(0)
		if m.Left {
			l = 1
		}
		w.Uvarint(l)
		w.String(m.Addr)
	}
}

// decodeMembers decodes a view snapshot, rejecting member IDs outside the
// n-replica population (a hostile or corrupt frame must not grow the
// cluster) and implausible counts.
func decodeMembers(r *wire.Reader, n int) ([]membership.Member, error) {
	count := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Each member costs at least four bytes (id, epoch, left, addr length).
	if count > uint64(r.Remaining()) {
		return nil, fmt.Errorf("cluster: implausible member count %d", count)
	}
	ms := make([]membership.Member, 0, count)
	for i := uint64(0); i < count; i++ {
		m := membership.Member{ID: int(r.Uvarint())}
		m.Epoch = r.Uvarint()
		m.Left = r.Uvarint() == 1
		m.Addr = r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if m.ID < 0 || m.ID >= n {
			return nil, fmt.Errorf("cluster: member r%d outside cluster of %d", m.ID, n)
		}
		ms = append(ms, m)
	}
	return ms, nil
}

// appendJoinAck seals the join negotiation: codec, the view snapshot, and
// (v4, trailing so a v3 joiner stops at the members) the negotiated
// compression algorithm for the sync conversation's bulk frames.
func appendJoinAck(w *wire.Writer, codec wire.CodecID, ms []membership.Member, comp uint64) {
	w.Uvarint(tJoinAck)
	w.Uvarint(helloVersion)
	w.Uvarint(uint64(codec))
	appendMembers(w, ms)
	w.Uvarint(comp)
}

func decodeJoinAck(r *wire.Reader, n int) (wire.CodecID, []membership.Member, uint64, error) {
	r.Uvarint() // version: informational
	codec := wire.CodecID(r.Uvarint())
	if err := r.Err(); err != nil {
		return 0, nil, 0, err
	}
	ms, err := decodeMembers(r, n)
	if err != nil {
		return codec, ms, 0, err
	}
	comp := uint64(0)
	if r.Remaining() > 0 {
		comp = r.Uvarint()
	}
	return codec, ms, comp, r.Err()
}

func appendGossip(w *wire.Writer, from model.ReplicaID, ms []membership.Member) {
	w.Uvarint(tGossip)
	w.Uvarint(uint64(from))
	appendMembers(w, ms)
}

func decodeGossip(r *wire.Reader, n int) (model.ReplicaID, []membership.Member, error) {
	from := model.ReplicaID(r.Uvarint())
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	ms, err := decodeMembers(r, n)
	return from, ms, err
}

func appendGossipAck(w *wire.Writer, ms []membership.Member) {
	w.Uvarint(tGossipAck)
	appendMembers(w, ms)
}

// originDigest summarizes one origin's history: how many updates and the
// Merkle root over all of them. In a tDigestResp the donor adds the root
// over the requester's own count (PrefixRoot), which is what proves the
// shared prefix matches before any range is pulled.
type originDigest struct {
	Origin     model.ReplicaID
	Count      uint64
	Root       membership.Hash
	PrefixRoot membership.Hash // tDigestResp only
}

// appendDigest encodes a tDigest or tDigestResp frame (withPrefix selects
// the response layout, which carries the extra prefix root per origin).
func appendDigest(w *wire.Writer, typ uint64, ds []originDigest) {
	w.Uvarint(typ)
	w.Uvarint(uint64(len(ds)))
	for _, d := range ds {
		w.Uvarint(uint64(d.Origin))
		w.Uvarint(d.Count)
		w.Raw(d.Root[:])
		if typ == tDigestResp {
			w.Raw(d.PrefixRoot[:])
		}
	}
}

// readHash reads a fixed 32-byte hash.
func readHash(r *wire.Reader) (membership.Hash, bool) {
	var h membership.Hash
	b := r.Fixed(len(h))
	if b == nil {
		return h, false
	}
	copy(h[:], b)
	return h, true
}

// decodeDigest decodes a tDigest or tDigestResp body (withPrefix must
// match the encoder's frame type).
func decodeDigest(r *wire.Reader, withPrefix bool) ([]originDigest, error) {
	count := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	entry := 34 // origin + count varints + one 32-byte hash, minimum
	if withPrefix {
		entry += 32
	}
	if count > uint64(r.Remaining()/entry)+1 {
		return nil, fmt.Errorf("cluster: implausible digest count %d", count)
	}
	ds := make([]originDigest, 0, count)
	for i := uint64(0); i < count; i++ {
		d := originDigest{Origin: model.ReplicaID(r.Uvarint()), Count: r.Uvarint()}
		var ok bool
		if d.Root, ok = readHash(r); !ok {
			return nil, wire.ErrTruncated
		}
		if withPrefix {
			if d.PrefixRoot, ok = readHash(r); !ok {
				return nil, wire.ErrTruncated
			}
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		ds = append(ds, d)
	}
	return ds, nil
}

func appendTreeReq(w *wire.Writer, origin model.ReplicaID, prefix uint64, level int, index uint64) {
	w.Uvarint(tTreeReq)
	w.Uvarint(uint64(origin))
	w.Uvarint(prefix)
	w.Uvarint(uint64(level))
	w.Uvarint(index)
}

func decodeTreeReq(r *wire.Reader) (origin model.ReplicaID, prefix uint64, level int, index uint64, err error) {
	origin = model.ReplicaID(r.Uvarint())
	prefix = r.Uvarint()
	level = int(r.Uvarint())
	index = r.Uvarint()
	return origin, prefix, level, index, r.Err()
}

func appendTreeResp(w *wire.Writer, h membership.Hash, ok bool) {
	w.Uvarint(tTreeResp)
	b := uint64(0)
	if ok {
		b = 1
	}
	w.Uvarint(b)
	w.Raw(h[:])
}

func decodeTreeResp(r *wire.Reader) (membership.Hash, bool, error) {
	ok := r.Uvarint() == 1
	h, have := readHash(r)
	if !have {
		return h, false, wire.ErrTruncated
	}
	return h, ok, r.Err()
}

// appendRangeReq asks for [from, from+count) of one origin's updates.
// window (v4, trailing) is the pull's credit window: how many unacked
// chunks the joiner is prepared to have in flight. A v3 request carries no
// window and decodes as 1, which is exactly the old stop-and-wait.
func appendRangeReq(w *wire.Writer, origin model.ReplicaID, from, count, window uint64) {
	w.Uvarint(tRangeReq)
	w.Uvarint(uint64(origin))
	w.Uvarint(from)
	w.Uvarint(count)
	w.Uvarint(window)
}

func decodeRangeReq(r *wire.Reader) (origin model.ReplicaID, from, count, window uint64, err error) {
	origin = model.ReplicaID(r.Uvarint())
	from = r.Uvarint()
	count = r.Uvarint()
	window = 1
	if r.Err() == nil && r.Remaining() > 0 {
		window = r.Uvarint()
	}
	if window < 1 {
		window = 1
	}
	return origin, from, count, window, r.Err()
}

// appendRangeResp encodes one anti-entropy chunk: the same per-update
// layout as tBatch behind a distinct type, so sync traffic is countable
// separately from live replication in packet captures and stats.
func appendRangeResp(w *wire.Writer, origin model.ReplicaID, us []protoUpdate) {
	w.Uvarint(tRangeResp)
	w.Uvarint(uint64(origin))
	w.Uvarint(uint64(len(us)))
	for _, u := range us {
		w.Uvarint(u.Seq)
		w.Uvarint(u.Lamport)
		w.Uvarint(uint64(len(u.Payload)))
		w.Raw(u.Payload)
	}
}

// decodeRangeResp decodes a tRangeResp body. Payloads alias the frame
// buffer, like decodeBatch's.
func decodeRangeResp(r *wire.Reader) ([]protoUpdate, error) {
	origin := model.ReplicaID(r.Uvarint())
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("cluster: implausible range count %d", n)
	}
	us := make([]protoUpdate, 0, n)
	for i := uint64(0); i < n; i++ {
		u := protoUpdate{
			Origin:  origin,
			Seq:     r.Uvarint(),
			Lamport: r.Uvarint(),
			Payload: r.Bytes(),
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		us = append(us, u)
	}
	return us, nil
}
