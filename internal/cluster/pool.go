package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
)

// ErrPoolClosed is returned by pool operations after Close.
var ErrPoolClosed = errors.New("cluster: pool closed")

// PoolOptions configures a client connection pool.
type PoolOptions struct {
	// Size is the number of pooled connections (default 4). Up to Size
	// operations run concurrently; further callers queue for a slot.
	Size int
	// DialTimeout bounds each (re)dial (Dial's default if zero).
	DialTimeout time.Duration
	// OpTimeout is applied to every pooled client (SetOpTimeout); zero
	// leaves operations unbounded.
	OpTimeout time.Duration
	// Codec pins the structured-reply codec by name ("" keeps the binary
	// default).
	Codec string
}

// Pool multiplexes client operations over a fixed set of connections to one
// node. A Client serializes concurrent callers on a single connection (the
// protocol is strict request/response), so a multi-worker load generator
// pays head-of-line blocking per simulated client; a Pool gives concurrent
// callers up to Size parallel streams while bounding sockets.
//
// Connections are checked out per operation and dialed lazily: a slot holds
// nil until first use, and any operation error discards the connection (a
// failed round trip may leave the request/response stream desynced, so the
// connection cannot be trusted) — the slot then redials on next checkout.
// That is the health-check: a pool wedged by a node restart heals itself
// without any background goroutine.
type Pool struct {
	addr string
	opts PoolOptions

	mu     sync.Mutex
	closed bool

	// free holds the pool's slots: a *Client ready for checkout, or nil
	// for a slot that must (re)dial. Buffered to Size; every checkout
	// returns its slot in release, so the channel never blocks on send.
	free chan *Client
	// done unblocks checkouts waiting on free when Close runs; closing a
	// channel reaches waiters a plain flag cannot.
	done chan struct{}
}

// NewPool creates a pool of connections to addr. Dialing is lazy: creating
// a pool never touches the network, so a pool to a down node costs nothing
// until used.
func NewPool(addr string, opts PoolOptions) (*Pool, error) {
	if opts.Size == 0 {
		opts.Size = 4
	}
	if opts.Size < 1 {
		return nil, fmt.Errorf("cluster: pool size %d, want >= 1", opts.Size)
	}
	p := &Pool{
		addr: addr,
		opts: opts,
		free: make(chan *Client, opts.Size),
		done: make(chan struct{}),
	}
	for i := 0; i < opts.Size; i++ {
		p.free <- nil
	}
	return p, nil
}

// get checks out one connection, dialing if the slot is empty.
func (p *Pool) get() (*Client, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, ErrPoolClosed
	}
	select {
	case c := <-p.free:
		if c != nil {
			return c, nil
		}
		c, err := Dial(p.addr, p.opts.DialTimeout)
		if err != nil {
			p.free <- nil // return the empty slot before failing
			return nil, err
		}
		if p.opts.Codec != "" {
			if cerr := c.SetCodec(p.opts.Codec); cerr != nil {
				c.Close()
				p.free <- nil
				return nil, cerr
			}
		}
		c.SetOpTimeout(p.opts.OpTimeout)
		return c, nil
	case <-p.done:
		return nil, ErrPoolClosed
	}
}

// release returns a checked-out connection. An operation error discards it
// — the stream may be desynced — leaving an empty slot to redial later.
//
// The closed check and the slot return must sit in one critical section:
// checking under the lock but sending after releasing it left a window
// where Close could set the flag and drain free between the two, and the
// late `p.free <- c` then parked a live connection in a channel nobody
// would ever drain again — a leaked socket per racing checkout. Holding
// p.mu across the send is safe because free is buffered to Size and every
// checked-out connection owns exactly one slot: the send can never block.
func (p *Pool) release(c *Client, err error) {
	if err != nil {
		c.Close()
		c = nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		if c != nil {
			c.Close()
		}
		return
	}
	if testPoolReleaseGap != nil {
		testPoolReleaseGap()
	}
	p.free <- c
}

// testPoolReleaseGap, when set by a test, runs between release's closed
// check and its slot send. Both now sit under p.mu, so a concurrent Close
// cannot interleave there no matter how long the hook stalls — which is
// exactly what the regression test for the old check/unlock/send sequence
// proves by stalling it.
var testPoolReleaseGap func()

// Do performs one operation through a pooled connection.
func (p *Pool) Do(obj model.ObjectID, op model.Operation) (model.Response, error) {
	c, err := p.get()
	if err != nil {
		return model.Response{}, err
	}
	resp, err := c.Do(obj, op)
	p.release(c, err)
	return resp, err
}

// Stats fetches the node's counter snapshot through a pooled connection.
func (p *Pool) Stats() (Stats, error) {
	c, err := p.get()
	if err != nil {
		return Stats{}, err
	}
	s, err := c.Stats()
	p.release(c, err)
	return s, err
}

// History downloads the node's recorded history through a pooled connection.
func (p *Pool) History() (History, error) {
	c, err := p.get()
	if err != nil {
		return History{}, err
	}
	h, err := c.History()
	p.release(c, err)
	return h, err
}

// Close closes the pool and every idle connection. In-flight operations
// finish; their release then closes the straggler connections.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
	for {
		select {
		case c := <-p.free:
			if c != nil {
				c.Close()
			}
		default:
			return nil
		}
	}
}

// Pool implements the same operation surface as Client.
var _ Doer = (*Pool)(nil)
