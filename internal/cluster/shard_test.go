package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/livecheck"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"

	_ "repro/internal/store/causal"
	_ "repro/internal/store/lww"
)

// TestShardRouterDistribution: FNV-1a routing must be deterministic, stay
// in range, and spread a large flat keyspace evenly enough that no shard
// carries a pathological share.
func TestShardRouterDistribution(t *testing.T) {
	one := NewShardRouter(1)
	if one.Route("anything") != 0 || one.Route("") != 0 {
		t.Fatal("single-shard router must route everything to shard 0")
	}

	const shards = 8
	const keys = 100000
	r := NewShardRouter(shards)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		obj := model.ObjectID(fmt.Sprintf("k%06d", i))
		s := r.Route(obj)
		if s < 0 || s >= shards {
			t.Fatalf("key %q routed to %d, outside [0,%d)", obj, s, shards)
		}
		if s != r.Route(obj) {
			t.Fatalf("key %q routed twice to different shards", obj)
		}
		counts[s]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	// Uniform would be 12500 per shard; FNV over a flat keyspace stays
	// within a few percent. 1.25 is far looser than observed but tight
	// enough to catch a broken hash fold.
	if ratio := float64(max) / float64(min); ratio > 1.25 {
		t.Fatalf("shard load ratio %.3f (min %d, max %d) — routing is skewed", ratio, min, max)
	}
}

// shardedObjects returns objects covering every shard of the router, so a
// test workload exercises each independent domain.
func shardedObjects(t *testing.T, shards, atLeast int) []model.ObjectID {
	t.Helper()
	r := NewShardRouter(shards)
	covered := make(map[int]bool)
	var objs []model.ObjectID
	for i := 0; len(objs) < atLeast || len(covered) < shards; i++ {
		if i > 10000 {
			t.Fatalf("could not cover %d shards with %d keys", shards, i)
		}
		obj := model.ObjectID(fmt.Sprintf("k%04d", i))
		objs = append(objs, obj)
		covered[r.Route(obj)] = true
	}
	return objs
}

// TestShardedClusterConvergesAndAuditsPerShard is the tentpole's end-to-end
// check: a 3-node cluster with 4 shards per node takes writes from every
// node across keys covering every shard, replicates over the multiplexed
// links, quiesces, and converges. The recorded histories are then audited
// PER SHARD — same-shard histories across nodes merge into a well-formed
// execution; different shards never mix (Proposition 1's per-object
// projections: no object spans shards, so the full execution satisfies the
// checked guarantees iff every shard's projection does). The online
// ShardSet must agree with the offline verdicts.
func TestShardedClusterConvergesAndAuditsPerShard(t *testing.T) {
	const n = 3
	const shards = 4
	ck := livecheck.NewShardSet(n, shards, livecheck.Options{Types: spec.MVRTypes()})
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		st, err := store.Open("causal", spec.MVRTypes(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig(model.ReplicaID(i), n, st)
		cfg.Shards = shards
		cfg.Tap = ck.Observe
		nd, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	for i, nd := range nodes {
		peers := make(map[model.ReplicaID]string)
		for j, other := range nodes {
			if j != i {
				peers[model.ReplicaID(j)] = other.Addr()
			}
		}
		if err := nd.Connect(peers); err != nil {
			t.Fatal(err)
		}
	}

	objs := shardedObjects(t, shards, 24)
	for i, obj := range objs {
		nd := nodes[i%n]
		if _, err := nd.Do(obj, model.Write(model.Value(fmt.Sprintf("v%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	if !WaitQuiesced(nodes, 15*time.Second) {
		t.Fatal("sharded cluster did not quiesce")
	}
	doers := make([]Doer, n)
	for i, nd := range nodes {
		doers[i] = nd
	}
	if err := CheckConverged(doers, objs); err != nil {
		t.Fatalf("sharded cluster did not converge: %v", err)
	}

	// Per-shard audits: each shard's histories merge and check on their own.
	router := NewShardRouter(shards)
	totalEvents := 0
	for s := 0; s < shards; s++ {
		hists := make([]History, n)
		for i, nd := range nodes {
			h, err := nd.ShardHistory(s)
			if err != nil {
				t.Fatal(err)
			}
			if h.Shard != s || h.Shards != shards {
				t.Fatalf("node %d shard %d history tagged (%d of %d)", i, s, h.Shard, h.Shards)
			}
			// Every do event in shard s's history must be for an object that
			// routes to s — the projection property the audit rests on.
			for _, ev := range h.Events {
				if ev.Kind == model.ActDo && router.Route(ev.Object) != s {
					t.Fatalf("node %d shard %d recorded do on %q, which routes to shard %d",
						i, s, ev.Object, router.Route(ev.Object))
				}
				totalEvents++
			}
			hists[i] = h
		}
		audited, err := BuildAudit(hists)
		if err != nil {
			t.Fatalf("shard %d audit: %v", s, err)
		}
		if err := audited.Exec.CheckWellFormed(); err != nil {
			t.Fatalf("shard %d execution not well-formed: %v", s, err)
		}
	}
	if totalEvents == 0 {
		t.Fatal("no events recorded across any shard")
	}

	// Online verdict composes the same way and agrees.
	v := ck.Verdict()
	if !v.Clean || v.Violations != 0 {
		t.Fatalf("live shard-set verdict = %+v, want clean", v)
	}
	if v.Events == 0 {
		t.Fatal("live checker observed nothing; Tap is not wired per shard")
	}

	// Stats carry coherent per-shard breakdowns.
	for i, nd := range nodes {
		st := nd.Stats()
		if st.Shards != shards || len(st.ShardOps) != shards {
			t.Fatalf("node %d stats shards = %d (%d slices), want %d", i, st.Shards, len(st.ShardOps), shards)
		}
		var ops, sends, receives, events int64
		for s := 0; s < shards; s++ {
			ops += st.ShardOps[s]
			sends += st.ShardSends[s]
			receives += st.ShardReceives[s]
			events += st.ShardEvents[s]
		}
		if ops != st.Ops || sends != st.Sends || receives != st.Receives || events != st.Events {
			t.Fatalf("node %d per-shard sums (%d,%d,%d,%d) != totals (%d,%d,%d,%d)",
				i, ops, sends, receives, events, st.Ops, st.Sends, st.Receives, st.Events)
		}
		if st.Violations != 0 {
			t.Fatalf("node %d recorded %d §4 violations", i, st.Violations)
		}
	}
}

// TestShardCountMismatchRefused: two nodes sealed at different shard counts
// must refuse to replicate — a frame interpreted in the wrong seq-domain
// partitioning would corrupt both histories, so no data may cross at all.
func TestShardCountMismatchRefused(t *testing.T) {
	mk := func(id model.ReplicaID, shards int) *Node {
		st, err := store.Open("lww", spec.MVRTypes(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig(id, 2, st)
		cfg.Shards = shards
		nd, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.Close() })
		return nd
	}
	a := mk(0, 2)
	b := mk(1, 4)
	if err := a.Connect(map[model.ReplicaID]string{1: b.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(map[model.ReplicaID]string{0: a.Addr()}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Do("x", model.Write("from-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Do("x", model.Write("from-b")); err != nil {
		t.Fatal(err)
	}
	// Give the links ample time to (wrongly) deliver.
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if a.Stats().Receives != 0 || b.Stats().Receives != 0 {
			t.Fatalf("mismatched shard counts exchanged data: a received %d, b received %d",
				a.Stats().Receives, b.Stats().Receives)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestShardedNodeInteroperatesWithSingleShard: Shards == 1 keeps the
// pre-sharding wire behavior exactly, so a node configured with the new
// field at 1 (or 0) pairs with a default node.
func TestShardedNodeInteroperatesWithSingleShard(t *testing.T) {
	mk := func(id model.ReplicaID, shards int) *Node {
		st, err := store.Open("lww", spec.MVRTypes(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig(id, 2, st)
		cfg.Shards = shards
		nd, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.Close() })
		return nd
	}
	a := mk(0, 1)
	b := mk(1, 0) // zero defaults to one shard
	if err := a.Connect(map[model.ReplicaID]string{1: b.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(map[model.ReplicaID]string{0: a.Addr()}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Do("x", model.Write("v")); err != nil {
		t.Fatal(err)
	}
	if !WaitQuiesced([]*Node{a, b}, 10*time.Second) {
		t.Fatal("single-shard pair did not quiesce")
	}
	if err := CheckConverged([]Doer{a, b}, []model.ObjectID{"x"}); err != nil {
		t.Fatal(err)
	}
}
