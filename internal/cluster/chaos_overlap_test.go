package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
)

// TestSupervisorOverlappingCrashWindows drives the case the single-crash
// schedule test never reaches: two victims down at once, their windows
// overlapping, leaving a single live node. The survivor must keep taking
// writes, both victims must rejoin from their captured histories, and the
// run must quiesce, converge, and audit clean — minority liveness plus
// fail-stop recovery under compound failure.
func TestSupervisorOverlappingCrashWindows(t *testing.T) {
	st, err := store.Open("causal", spec.MVRTypes(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	em := fault.NewNetem(n)
	base := Config{
		Store: st, Seed: 23,
		DialTimeout:    time.Second,
		DialBackoffMin: 5 * time.Millisecond,
		DialBackoffMax: 100 * time.Millisecond,
		RetransmitMin:  25 * time.Millisecond,
		RetransmitMax:  250 * time.Millisecond,
	}
	sup, err := NewSupervisor(base, n, em, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	// Hand-built overlap: node 0 down over [4,20), node 1 over [8,26) —
	// both down together during [8,20).
	sched := fault.Schedule{
		Seed: 23, N: n, Steps: 40,
		Directives: []fault.Directive{
			{Step: 4, Kind: fault.KindCrash, Node: 0},
			{Step: 8, Kind: fault.KindCrash, Node: 1},
			{Step: 20, Kind: fault.KindRestart, Node: 0},
			{Step: 26, Kind: fault.KindRestart, Node: 1},
		},
	}
	if err := sched.CheckBalanced(); err != nil {
		t.Fatalf("schedule not balanced: %v", err)
	}
	objects := []model.ObjectID{"x", "y"}

	var wg sync.WaitGroup
	schedErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		schedErr <- sup.RunSchedule(sched)
	}()
	// One worker per node: the survivor's writes must all succeed, the
	// victims' workers tolerate downtime errors.
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				v := model.Value(fmt.Sprintf("w%d.%d", w, i))
				_, err := sup.Do(w, objects[i%len(objects)], model.Write(v))
				if w == 2 && err != nil {
					t.Errorf("survivor write %d: %v", i, err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if err := <-schedErr; err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if crashes, restarts := sup.Crashes(); crashes != 2 || restarts != 2 {
		t.Fatalf("crashes/restarts = %d/%d, want 2/2", crashes, restarts)
	}

	live := sup.Nodes()
	if len(live) != n {
		t.Fatalf("%d nodes live after schedule, want %d", len(live), n)
	}
	if !WaitQuiesced(live, 30*time.Second) {
		t.Fatal("cluster did not quiesce after overlapping crashes")
	}
	doers := make([]Doer, n)
	for i := 0; i < n; i++ {
		doers[i] = sup.Doer(i)
	}
	if err := CheckConverged(doers, objects); err != nil {
		t.Fatal(err)
	}
	hists, err := sup.Histories()
	if err != nil {
		t.Fatal(err)
	}
	audit, err := BuildAudit(hists)
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Exec.CheckWellFormed(); err != nil {
		t.Fatalf("merged execution not well-formed: %v", err)
	}
	if err := consistency.CheckCausal(audit.Abstract, spec.MVRTypes()); err != nil {
		t.Fatalf("derived abstract execution not causal: %v", err)
	}
}

// TestSupervisorSimultaneousCrashLosesNoAckedUpdate is the regression for
// the crash-snapshot ordering bug: the supervisor used to capture a
// victim's history while its event loop was still running, so updates
// applied (and acknowledged) between the snapshot and the actual stop were
// pruned from the sender's queue as acked yet missing from the restarted
// node's log — an unfillable sequence gap that wedged the cluster short of
// quiescence forever. Both victims crash at the same step under flood-rate
// writes to keep updates in flight inside that window; the run must still
// quiesce and converge.
func TestSupervisorSimultaneousCrashLosesNoAckedUpdate(t *testing.T) {
	st, err := store.Open("causal", spec.MVRTypes(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	em := fault.NewNetem(n)
	base := Config{
		Store: st, Seed: 29,
		DialTimeout:    time.Second,
		DialBackoffMin: 5 * time.Millisecond,
		DialBackoffMax: 100 * time.Millisecond,
		RetransmitMin:  25 * time.Millisecond,
		RetransmitMax:  250 * time.Millisecond,
	}
	sup, err := NewSupervisor(base, n, em, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	sched := fault.Schedule{
		Seed: 29, N: n, Steps: 30,
		Directives: []fault.Directive{
			{Step: 2, Kind: fault.KindCrash, Node: 0},
			{Step: 2, Kind: fault.KindCrash, Node: 1},
			{Step: 16, Kind: fault.KindRestart, Node: 0},
			{Step: 16, Kind: fault.KindRestart, Node: 1},
		},
	}
	if err := sched.CheckBalanced(); err != nil {
		t.Fatalf("schedule not balanced: %v", err)
	}
	objects := []model.ObjectID{"x", "y"}

	done := make(chan struct{})
	schedErr := make(chan error, 1)
	go func() { defer close(done); schedErr <- sup.RunSchedule(sched) }()
	// Flood writes with no pacing: the bug needs an update applied at a
	// victim in the instant it crashes, so keep the pipelines full.
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4000; i++ {
				select {
				case <-done:
					return
				default:
				}
				v := model.Value(fmt.Sprintf("w%d.%d", w, i))
				_, _ = sup.Do(w, objects[i%len(objects)], model.Write(v))
			}
		}(w)
	}
	wg.Wait()
	<-done
	if err := <-schedErr; err != nil {
		t.Fatalf("schedule: %v", err)
	}
	live := sup.Nodes()
	if len(live) != n {
		t.Fatalf("%d nodes live after schedule, want %d", len(live), n)
	}
	if !WaitQuiesced(live, 30*time.Second) {
		for _, nd := range live {
			t.Logf("r%d stats: %+v", nd.ID(), nd.Stats())
		}
		t.Fatal("cluster wedged: an update acked inside the crash window was lost")
	}
	doers := make([]Doer, n)
	for i := 0; i < n; i++ {
		doers[i] = sup.Doer(i)
	}
	if err := CheckConverged(doers, objects); err != nil {
		t.Fatal(err)
	}
	hists, err := sup.Histories()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildAudit(hists); err != nil {
		t.Fatal(err)
	}
}

// TestGenerateOverlappingCrashWindowsOccur pins that multi-victim configs
// really do produce overlapping downtime (the schedule family the
// supervisor test covers is reachable from Generate, not just hand-built),
// and that every such schedule still checks balanced.
func TestGenerateOverlappingCrashWindowsOccur(t *testing.T) {
	overlapped := false
	for seed := int64(1); seed <= 50; seed++ {
		sched := fault.Generate(fault.Config{Seed: seed, N: 3, Steps: 80, Crashes: 2})
		if err := sched.CheckBalanced(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		down := map[int]bool{}
		for _, d := range sched.Directives {
			switch d.Kind {
			case fault.KindCrash:
				down[d.Node] = true
				if len(down) > 1 {
					overlapped = true
				}
			case fault.KindRestart:
				delete(down, d.Node)
			}
		}
	}
	if !overlapped {
		t.Fatal("no seed in 1..50 produced overlapping crash windows")
	}
}
