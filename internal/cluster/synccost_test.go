package cluster

import (
	"fmt"
	"testing"
)

// TestSyncCostModel pins the shape of the deterministic catch-up cost
// table: a full-prefix joiner pulls nothing, an empty joiner's pull costs
// what a full transfer costs, costs shrink monotonically as the prefix
// grows, and batching cuts the chunk count.
func TestSyncCostModel(t *testing.T) {
	payloads := make([][]byte, 100)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("payload-%04d", i))
	}

	full := SyncCost(payloads, 0, 16, 0, 1)
	if full.Pulled != 100 || full.PulledBytes != full.FullBytes {
		t.Fatalf("empty joiner must pull everything: %+v", full)
	}
	if full.Chunks != 100/16+1 {
		t.Fatalf("batch-16 chunking: %d chunks for 100 updates, want %d", full.Chunks, 100/16+1)
	}
	if full.RTTs != full.Chunks+1 {
		t.Fatalf("stop-and-wait RTTs = %d, want chunks+1 = %d", full.RTTs, full.Chunks+1)
	}

	done := SyncCost(payloads, 100, 16, 0, 1)
	if done.Pulled != 0 || done.Chunks != 0 || done.PulledBytes != 0 || done.RTTs != 0 {
		t.Fatalf("full-prefix joiner must pull nothing: %+v", done)
	}
	if done.DigestBytes == 0 {
		t.Fatal("digest exchange is never free")
	}

	prev := full
	for _, p := range []int{25, 50, 90} {
		row := SyncCost(payloads, p, 16, 0, 1)
		if row.Pulled != int64(100-p) {
			t.Fatalf("prefix %d: pulled %d, want %d", p, row.Pulled, 100-p)
		}
		if row.PulledBytes >= prev.PulledBytes {
			t.Fatalf("prefix %d: pull bytes %d did not shrink below %d", p, row.PulledBytes, prev.PulledBytes)
		}
		if row.FullBytes != full.FullBytes {
			t.Fatalf("prefix %d: full-transfer baseline moved: %d != %d", p, row.FullBytes, full.FullBytes)
		}
		prev = row
	}

	unbatched := SyncCost(payloads, 0, 1, 0, 1)
	if unbatched.Chunks != 100 {
		t.Fatalf("JSON-floor chunking: %d chunks, want 100", unbatched.Chunks)
	}
	if unbatched.PulledBytes <= full.PulledBytes {
		t.Fatal("per-update framing should cost more bytes than batch-16")
	}

	// Determinism: same inputs, same row.
	if a, b := SyncCost(payloads, 50, 16, 0, 1), SyncCost(payloads, 50, 16, 0, 1); a != b {
		t.Fatalf("SyncCost not deterministic: %+v vs %+v", a, b)
	}
}

// TestSyncCostWindow pins the credit window's effect: bytes are
// window-independent (the window pipelines the same frames), while RTTs for
// a multi-chunk pull drop strictly below stop-and-wait, following
// 1+⌈Chunks/Window⌉.
func TestSyncCostWindow(t *testing.T) {
	payloads := make([][]byte, 100)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("payload-%04d", i))
	}

	sw := SyncCost(payloads, 0, 16, 0, 1)
	win := SyncCost(payloads, 0, 16, 0, 8)
	if win.Pulled != sw.Pulled || win.Chunks != sw.Chunks ||
		win.PulledBytes != sw.PulledBytes || win.DigestBytes != sw.DigestBytes ||
		win.FullBytes != sw.FullBytes {
		t.Fatalf("window changed bytes/chunks:\n stop-and-wait %+v\n windowed %+v", sw, win)
	}
	if win.RTTs >= sw.RTTs {
		t.Fatalf("windowed RTTs %d not below stop-and-wait %d", win.RTTs, sw.RTTs)
	}
	if want := 1 + (win.Chunks+7)/8; win.RTTs != want {
		t.Fatalf("window-8 RTTs = %d, want 1+⌈%d/8⌉ = %d", win.RTTs, win.Chunks, want)
	}

	// Caught-up joiner: no pull, no RTTs, regardless of window.
	if row := SyncCost(payloads, 100, 16, 0, 8); row.RTTs != 0 {
		t.Fatalf("caught-up joiner RTTs = %d, want 0", row.RTTs)
	}

	// Hostile/zero window is clamped to stop-and-wait, not div-by-zero.
	if row := SyncCost(payloads, 0, 16, 0, 0); row.Window != 1 || row.RTTs != sw.RTTs {
		t.Fatalf("window 0 row = %+v, want stop-and-wait", row)
	}
}
