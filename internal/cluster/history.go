package cluster

import (
	"fmt"
	"sort"

	"repro/internal/abstract"
	"repro/internal/execution"
	"repro/internal/model"
)

// OrderError reports per-node histories that cannot merge into a
// well-formed execution: a receive whose (Origin, Seq) matches no send,
// one whose Lamport time sorts it before the send it claims to follow, or
// two send events claiming the same (Origin, Seq). All mean a corrupted or
// truncated history — merging on anyway would fabricate an execution the
// cluster never ran.
type OrderError struct {
	Node   model.ReplicaID // node whose history holds the offending event
	Origin model.ReplicaID // claimed message origin
	Seq    uint64          // claimed broadcast sequence number
	// BeforeSend distinguishes a receive that sorts before its send (clock
	// corruption) from one with no send event anywhere (truncated log).
	BeforeSend bool
	// DuplicateSend marks a second send event claiming an already-seen
	// (Origin, Seq): message identity is that pair, so two sends minting it
	// would silently attribute every receive to whichever send merged last.
	DuplicateSend bool
}

// Error implements error.
func (e *OrderError) Error() string {
	switch {
	case e.DuplicateSend:
		return fmt.Sprintf("cluster: r%d's history holds a second send event for (r%d,%d) — duplicate broadcast identity",
			e.Node, e.Origin, e.Seq)
	case e.BeforeSend:
		return fmt.Sprintf("cluster: r%d's receive of (r%d,%d) sorts before its send (corrupted Lamport clocks)",
			e.Node, e.Origin, e.Seq)
	default:
		return fmt.Sprintf("cluster: r%d received (r%d,%d) but no history holds its send event",
			e.Node, e.Origin, e.Seq)
	}
}

// Event is one locally recorded do/send/receive event of a node, stamped
// with a Lamport time so per-node histories can be merged into one concrete
// execution after the run. Message identity is the pair (Origin, Seq): the
// Seq-th broadcast minted at Origin — a global name that needs no
// coordination.
type Event struct {
	Kind    model.Action `json:"kind"`
	Lamport uint64       `json:"lamport"`

	// Do events.
	Object model.ObjectID  `json:"obj,omitempty"`
	Op     model.Operation `json:"op,omitempty"`
	Rval   model.Response  `json:"rval,omitempty"`
	// Dot identifies the mutator the do event minted (zero Seq for reads
	// and for stores without dot reporting).
	Dot model.Dot `json:"dot,omitempty"`
	// Frontier is the per-origin visible-update prefix right after the do
	// event: Frontier[i] = s means every update (i,1)..(i,s) is visible.
	// It is the networked stand-in for the simulator's per-event visibility
	// snapshot, exact for stores whose visibility is per-origin
	// prefix-closed (all registered stores under this FIFO transport).
	Frontier []uint64 `json:"frontier,omitempty"`

	// Send and receive events.
	Origin model.ReplicaID `json:"origin,omitempty"`
	Seq    uint64          `json:"seq,omitempty"`
	// Payload is recorded at send events (message-size accounting and the
	// execution's message table) and at receive events (so a restarted
	// node can rebuild its replica state from its own history alone —
	// Config.Restore).
	Payload []byte `json:"payload,omitempty"`
}

// History is one node's recorded local history, self-describing enough to
// be merged and audited by a process that never saw the node.
type History struct {
	Node   model.ReplicaID `json:"node"`
	N      int             `json:"n"`
	Store  string          `json:"store"`
	Events []Event         `json:"events"`
	// Shard/Shards identify which shard's projection this history is when
	// the recording node was sharded (zero-valued on unsharded nodes for
	// compatibility). Histories from different shards have independent
	// (Origin, Seq) domains and must never be merged together — each
	// shard's histories merge and audit with their cross-node counterparts
	// only, which Proposition 1's per-object projections make sound.
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`
}

// Audit is the merged, checkable view of a cluster run: the global concrete
// execution (for CheckWellFormed and message accounting) and the derived
// abstract execution (for the consistency checkers), built exactly as the
// simulator builds them for in-process runs.
type Audit struct {
	Exec     *execution.Execution
	Abstract *abstract.Execution
}

// mergedEvent pairs an event with its owning node for the global sort.
type mergedEvent struct {
	node model.ReplicaID
	idx  int // index in the node's local history
	ev   Event
}

// MergeHistories interleaves per-node histories into one concrete
// execution. Events sort by (Lamport, node, local index): Lamport times are
// strictly increasing per node and strictly ordered across a message
// (receive > send), so the merge is a linearization of the happens-before
// relation — in particular every receive lands after its send, which is
// what CheckWellFormed demands of a Definition 1 execution.
func MergeHistories(hists []History) (*execution.Execution, error) {
	merged, err := mergeOrder(hists)
	if err != nil {
		return nil, err
	}
	x := execution.New()
	msgID := make(map[[2]uint64]int) // (origin, seq) -> execution message ID
	for _, m := range merged {
		switch m.ev.Kind {
		case model.ActDo:
			x.AppendDo(m.node, m.ev.Object, m.ev.Op, m.ev.Rval)
		case model.ActSend:
			e := x.AppendSend(m.node, m.ev.Payload)
			msgID[[2]uint64{uint64(m.ev.Origin), m.ev.Seq}] = e.MsgID
		case model.ActReceive:
			id, ok := msgID[[2]uint64{uint64(m.ev.Origin), m.ev.Seq}]
			if !ok {
				return nil, fmt.Errorf("cluster: r%d received update (r%d,%d) with no merged send event",
					m.node, m.ev.Origin, m.ev.Seq)
			}
			x.AppendReceive(m.node, id)
		default:
			return nil, fmt.Errorf("cluster: unknown event kind %v in r%d's history", m.ev.Kind, m.node)
		}
	}
	return x, nil
}

func mergeOrder(hists []History) ([]mergedEvent, error) {
	var merged []mergedEvent
	seen := make(map[model.ReplicaID]bool)
	allSends := make(map[[2]uint64]bool)
	for _, h := range hists {
		if seen[h.Node] {
			return nil, fmt.Errorf("cluster: two histories claim node r%d", h.Node)
		}
		seen[h.Node] = true
		for i, ev := range h.Events {
			if ev.Kind == model.ActSend {
				key := [2]uint64{uint64(ev.Origin), ev.Seq}
				if allSends[key] {
					// A second send of the same identity (e.g. a restart
					// re-recording a re-offered broadcast) would let
					// MergeHistories attribute every receive to whichever
					// send merged last; reject instead of merging a lie.
					return nil, &OrderError{
						Node: h.Node, Origin: ev.Origin, Seq: ev.Seq,
						DuplicateSend: true,
					}
				}
				allSends[key] = true
			}
			merged = append(merged, mergedEvent{node: h.Node, idx: i, ev: ev})
		}
	}
	sort.SliceStable(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.ev.Lamport != b.ev.Lamport {
			return a.ev.Lamport < b.ev.Lamport
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return a.idx < b.idx
	})
	// Send-before-receive validation: in the merged order, every receive's
	// (Origin, Seq) must already have a send behind it. Lamport stamping
	// guarantees this for honest histories (receive > send); a violation
	// means corruption, reported as a typed *OrderError rather than
	// silently producing an execution CheckWellFormed would reject later
	// (or worse, one it wouldn't).
	sent := make(map[[2]uint64]bool)
	for _, m := range merged {
		key := [2]uint64{uint64(m.ev.Origin), m.ev.Seq}
		switch m.ev.Kind {
		case model.ActSend:
			sent[key] = true
		case model.ActReceive:
			if !sent[key] {
				return nil, &OrderError{
					Node: m.node, Origin: m.ev.Origin, Seq: m.ev.Seq,
					BeforeSend: allSends[key],
				}
			}
		}
	}
	return merged, nil
}

// BuildAudit merges the histories and derives the abstract execution the
// run complies with, mirroring sim.Cluster.DerivedAbstract: H is the merged
// do order, and e_i -vis-> e_j iff session order holds, e_i is a mutator
// whose dot is inside e_j's frontier, or e_i is a read whose frontier is
// contained in e_j's (the strongest visibility a complying execution can
// claim for a read).
func BuildAudit(hists []History) (*Audit, error) {
	merged, err := mergeOrder(hists)
	if err != nil {
		return nil, err
	}
	exec, err := MergeHistories(hists)
	if err != nil {
		return nil, err
	}

	a := abstract.New()
	var dots []model.Dot
	var frontiers [][]uint64
	var replicas []model.ReplicaID
	for _, m := range merged {
		if m.ev.Kind != model.ActDo {
			continue
		}
		a.Append(model.DoEvent(m.node, m.ev.Object, m.ev.Op, m.ev.Rval))
		dots = append(dots, m.ev.Dot)
		frontiers = append(frontiers, m.ev.Frontier)
		replicas = append(replicas, m.node)
	}
	covers := func(f []uint64, d model.Dot) bool {
		return int(d.Origin) < len(f) && f[d.Origin] >= d.Seq
	}
	contained := func(fi, fj []uint64) bool {
		for o, s := range fi {
			if s > 0 && (o >= len(fj) || fj[o] < s) {
				return false
			}
		}
		return true
	}
	for j := range dots {
		for i := 0; i < j; i++ {
			switch {
			case replicas[i] == replicas[j]:
				a.AddVis(i, j)
			case dots[i].Seq != 0: // mutator: dot inside j's frontier
				if covers(frontiers[j], dots[i]) {
					a.AddVis(i, j)
				}
			default: // read: frontier containment
				// Only when both events actually reported a frontier: a
				// store without visibility reporting records none (nil),
				// and deriving "saw nothing ⊆ anything" edges from that
				// absence would fabricate visibility the store never
				// claimed — enough to mask a real violation behind a
				// well-connected read.
				if len(frontiers[i]) > 0 && len(frontiers[j]) > 0 && contained(frontiers[i], frontiers[j]) {
					a.AddVis(i, j)
				}
			}
		}
	}
	return &Audit{Exec: exec, Abstract: a}, nil
}

// Doer performs one client operation at a replica — implemented by *Node
// (in-process) and *Client (over the wire), so convergence checks run
// identically in tests and in cmd/loadgen.
type Doer interface {
	Do(obj model.ObjectID, op model.Operation) (model.Response, error)
}

// CheckConverged verifies Lemma 3's conclusion on a quiescent cluster:
// reads of every listed object return the same response at every replica.
// Unlike the simulator's lossy runs, the transport's retransmission makes
// delivery genuinely eventual (Definition 3), so convergence is owed after
// quiescence even on a network that dropped connections. The reads go
// through the replicas' ordinary client path and are recorded like any
// other operations.
func CheckConverged(replicas []Doer, objects []model.ObjectID) error {
	for _, obj := range objects {
		var first model.Response
		for i, r := range replicas {
			resp, err := r.Do(obj, model.Read())
			if err != nil {
				return fmt.Errorf("cluster: convergence read of %s at replica %d: %w", obj, i, err)
			}
			if i == 0 {
				first = resp
			} else if !resp.Equal(first) {
				return fmt.Errorf("cluster: %s diverged after quiescence: replica 0 reads %s, replica %d reads %s",
					obj, first, i, resp)
			}
		}
	}
	return nil
}
