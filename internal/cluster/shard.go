package cluster

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/store"
)

// ShardRouter maps object keys onto shard indices. Routing is pure FNV-1a
// over the key bytes, so every node of a cluster (and every client) agrees
// on the placement without coordination — the same property that makes
// (Origin, Seq) message identity work. A router over one shard routes
// everything to shard 0, which is the unsharded node exactly.
type ShardRouter struct {
	shards uint32
}

// NewShardRouter builds a router over the given shard count (minimum 1).
func NewShardRouter(shards int) *ShardRouter {
	if shards < 1 {
		shards = 1
	}
	return &ShardRouter{shards: uint32(shards)}
}

// Shards returns the shard count.
func (r *ShardRouter) Shards() int { return int(r.shards) }

// Route returns the shard index for one object key.
func (r *ShardRouter) Route(obj model.ObjectID) int {
	if r.shards == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(obj))
	return int(h.Sum32() % r.shards)
}

// shard is one independent slice of a node: its own store replica behind
// its own single-goroutine event loop, its own Lamport clock and broadcast
// sequence domain, its own recorded history and durable journal. Each
// shard is the paper's §2 replica in miniature — Proposition 1's
// per-object projections mean the per-shard histories audit independently
// and their verdicts compose, because no object ever spans two shards.
type shard struct {
	n   *Node
	idx int

	replica store.Replica
	// reportsVis caches whether the replica implements store.VisReporter:
	// only then do recorded do events carry a frontier (an absent report is
	// recorded as absent, not as an all-zero claim).
	reportsVis bool
	checker    *store.PropertyChecker

	calls chan func()

	// journal, when non-nil, persists each recorded event before its ack or
	// response leaves the node (Config.Journal for shard 0 of a single-shard
	// node, or the per-shard log Config.Storage opened). closeJournal runs
	// in Node.Close after the loops have exited.
	journal      func(Event) error
	closeJournal func() error

	// State below is owned by this shard's event-loop goroutine.
	lamport   uint64
	seq       uint64   // this shard's broadcast sequence counter
	delivered []uint64 // per-origin cumulative applied broadcast seq
	frontier  []uint64 // per-origin visible store-dot prefix
	events    []Event
	// jerr latches the first journal failure. Once set, the node is
	// fail-stopping: no further acks are written, operations error, and an
	// async Close is already underway. One shard failing to persist stops
	// the whole node — shards share the fate of their disk.
	jerr error
	// updates indexes every broadcast update this shard holds, per origin in
	// seq order (updates[o][i].Seq == i+1): its own live backlog — what
	// Connect offers a new link — plus everything received, which is what
	// anti-entropy range serving reads. Payloads are shared with the
	// recorded events and immutable once appended. Loop-owned.
	updates [][]protoUpdate
	// tree is the Merkle forest over updates, backing digest exchange with
	// joiners. treeOwned means this shard appends each update's hash itself
	// (in the same loop turn that records it); otherwise the durable layer
	// hashes on journal append — same turn, different owner, never both.
	tree      *membership.Forest
	treeOwned bool

	ops      atomic.Int64
	sends    atomic.Int64
	receives atomic.Int64
}

func newShard(n *Node, idx int) *shard {
	replica := n.cfg.Store.NewReplica(n.cfg.ID, n.cfg.N)
	_, reportsVis := replica.(store.VisReporter)
	return &shard{
		n:          n,
		idx:        idx,
		replica:    replica,
		reportsVis: reportsVis,
		checker:    store.NewPropertyChecker(replica),
		calls:      make(chan func()),
		delivered:  make([]uint64, n.cfg.N),
		frontier:   make([]uint64, n.cfg.N),
		updates:    make([][]protoUpdate, n.cfg.N),
	}
}

// loop is the shard's event loop: the only goroutine that touches the
// replica and the recorded history, serializing concurrent clients and
// peer deliveries into the single-threaded executions of Definition 1.
func (s *shard) loop() {
	defer s.n.wg.Done()
	for {
		select {
		case fn := <-s.calls:
			fn()
		case <-s.n.done:
			return
		}
	}
}

// inLoop runs fn on the shard's event loop and waits for it to finish.
// calls is unbuffered, so a successful send means the loop goroutine
// received fn and is committed to running it — after that the only correct
// move is to wait for completion.
func (s *shard) inLoop(fn func()) error {
	ran := make(chan struct{})
	select {
	case s.calls <- func() { fn(); close(ran) }:
		<-ran
		return nil
	case <-s.n.done:
		return ErrClosed
	}
}

// record appends one event to the shard's history and, when a journal is
// configured, persists it in the same event-loop turn — before the
// update's ack or the client's response can leave the node, so an
// acknowledged event is always durable. A journal failure fail-stops the
// node. Runs on the shard's loop (or in restore, before the loop starts).
func (s *shard) record(ev Event) {
	s.events = append(s.events, ev)
	if s.journal != nil && s.jerr == nil {
		if err := s.journal(ev); err != nil {
			s.jerr = fmt.Errorf("cluster: journal r%d shard %d event %d: %w", s.n.cfg.ID, s.idx, len(s.events)-1, err)
			go s.n.Close()
		}
	}
	// Tap after the journal verdict: a fail-stopping node streams nothing
	// it cannot also promise to remember, so the streamed prefix is always
	// a prefix of the durable log.
	if s.n.cfg.Tap != nil && s.jerr == nil {
		s.n.cfg.Tap(s.idx, liveEvent(s.n.cfg.ID, ev))
	}
}

func (s *shard) doInLoop(obj model.ObjectID, op model.Operation) model.Response {
	// The counter moves with the event append, inside the loop: a Stats
	// snapshot must never see the op counted but its event missing (or
	// vice versa).
	s.ops.Add(1)
	resp := s.checker.CheckDo(obj, op, func() model.Response { return s.replica.Do(obj, op) })
	s.lamport++
	ev := Event{Kind: model.ActDo, Lamport: s.lamport, Object: obj, Op: op, Rval: resp}
	if op.Kind.IsMutator() {
		if dr, ok := s.replica.(store.DotReporter); ok {
			if d, has := dr.LastDot(); has {
				ev.Dot = d
			}
		}
	}
	s.advanceFrontier()
	if s.reportsVis {
		ev.Frontier = append([]uint64(nil), s.frontier...)
	}
	// Stores without visibility reporting record no frontier at all: an
	// all-zero frontier would claim "this read saw nothing", and BuildAudit
	// would derive read-containment edges from a claim the store never made.
	s.record(ev)
	s.broadcastPending()
	return resp
}

// advanceFrontier pushes each origin's visible prefix forward by probing
// the store's own visibility report.
func (s *shard) advanceFrontier() {
	vr, ok := s.replica.(store.VisReporter)
	if !ok {
		return
	}
	for o := range s.frontier {
		for vr.Sees(model.Dot{Origin: model.ReplicaID(o), Seq: s.frontier[o] + 1}) {
			s.frontier[o]++
		}
	}
}

// broadcastPending drains the replica's outbox: each pending message
// becomes one recorded send event and one update enqueued to every peer
// link, tagged with this shard's index. Runs on the shard's event loop.
func (s *shard) broadcastPending() {
	for {
		p := s.replica.PendingMessage()
		if p == nil {
			return
		}
		payload := append([]byte(nil), p...)
		s.replica.OnSend()
		s.seq++
		s.lamport++
		s.record(Event{
			Kind: model.ActSend, Lamport: s.lamport,
			Origin: s.n.cfg.ID, Seq: s.seq, Payload: payload,
		})
		s.sends.Add(1)
		s.noteUpdateInLoop(s.n.cfg.ID, s.seq, s.lamport, payload)
		u := protoUpdate{Origin: s.n.cfg.ID, Seq: s.seq, Lamport: s.lamport, Payload: payload}
		for _, ps := range s.n.allPeers() {
			ps.enqueue(s.idx, u)
		}
	}
}

// applyUpdate delivers one replication frame on the shard's event loop and
// returns the cumulative applied seq for the update's origin (the ack
// value) plus whether the ack may be written: false means the journal
// failed, so the receive event backing this ack may not be durable.
// Exactly-once, in-order application falls out of the cumulative counter:
// duplicates re-ack, gaps wait for retransmission to fill them.
func (s *shard) applyUpdate(u protoUpdate) (uint64, bool) {
	next := s.delivered[u.Origin] + 1
	switch {
	case u.Seq < next:
		s.n.dupFrames.Add(1)
		s.n.cfg.Observer.AddDupFrames(1)
	case u.Seq > next:
		s.n.gapFrames.Add(1)
		s.n.cfg.Observer.AddGapFrames(1)
	default:
		s.checker.CheckReceive(u.Payload, func() { s.replica.Receive(u.Payload) })
		s.delivered[u.Origin] = u.Seq
		if u.Lamport > s.lamport {
			s.lamport = u.Lamport
		}
		s.lamport++
		payload := append([]byte(nil), u.Payload...)
		s.record(Event{
			Kind: model.ActReceive, Lamport: s.lamport,
			Origin: u.Origin, Seq: u.Seq,
			Payload: payload,
		})
		s.receives.Add(1)
		s.n.cfg.Observer.AddShardReceives(s.idx, 1)
		s.noteUpdateInLoop(u.Origin, u.Seq, u.Lamport, payload)
		s.broadcastPending()
	}
	return s.delivered[u.Origin], s.jerr == nil
}

// noteUpdate indexes one broadcast update into the per-origin backlog and,
// when this shard owns its Merkle forest, hashes it in — always in the
// same turn the update's event is recorded, so backlog, forest, and
// journal never disagree.
func (s *shard) noteUpdate(origin model.ReplicaID, seq, lamport uint64, payload []byte) error {
	s.updates[origin] = append(s.updates[origin], protoUpdate{Origin: origin, Seq: seq, Lamport: lamport, Payload: payload})
	if s.treeOwned {
		if err := s.tree.Append(int(origin), seq, payload); err != nil {
			return fmt.Errorf("cluster: r%d shard %d merkle append: %w", s.n.cfg.ID, s.idx, err)
		}
	}
	return nil
}

// noteUpdateInLoop is noteUpdate for event-loop callers, latching a
// failure into jerr (a misaligned forest would corrupt anti-entropy, so
// the node fail-stops like it does on a journal failure).
func (s *shard) noteUpdateInLoop(origin model.ReplicaID, seq, lamport uint64, payload []byte) {
	if err := s.noteUpdate(origin, seq, lamport, payload); err != nil && s.jerr == nil {
		s.jerr = err
		go s.n.Close()
	}
}

// restore replays a previous incarnation's history into the fresh replica
// before the node serves anything. Runs before the event-loop goroutine
// starts; no locking needed. See Config.Restore.
func (s *shard) restore(h *History) error {
	if h.Node != s.n.cfg.ID {
		return fmt.Errorf("cluster: restoring r%d's history into r%d", h.Node, s.n.cfg.ID)
	}
	if h.N != s.n.cfg.N {
		return fmt.Errorf("cluster: restored history is for a cluster of %d, node configured for %d", h.N, s.n.cfg.N)
	}
	for i, ev := range h.Events {
		switch ev.Kind {
		case model.ActDo:
			obj, op := ev.Object, ev.Op
			s.checker.CheckDo(obj, op, func() model.Response { return s.replica.Do(obj, op) })
		case model.ActSend:
			if ev.Origin != s.n.cfg.ID {
				return fmt.Errorf("cluster: restored send event %d claims origin r%d", i, ev.Origin)
			}
			s.replica.OnSend()
			s.seq = ev.Seq
			if err := s.noteUpdate(ev.Origin, ev.Seq, ev.Lamport, append([]byte(nil), ev.Payload...)); err != nil {
				return err
			}
		case model.ActReceive:
			if ev.Payload == nil {
				return fmt.Errorf("cluster: restored receive event %d has no payload (history predates payload recording)", i)
			}
			if int(ev.Origin) < 0 || int(ev.Origin) >= s.n.cfg.N {
				return fmt.Errorf("cluster: restored receive event %d has origin r%d outside cluster", i, ev.Origin)
			}
			payload := ev.Payload
			s.checker.CheckReceive(payload, func() { s.replica.Receive(payload) })
			s.delivered[ev.Origin] = ev.Seq
			if err := s.noteUpdate(ev.Origin, ev.Seq, ev.Lamport, payload); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cluster: restored event %d has unknown kind %v", i, ev.Kind)
		}
		if ev.Lamport > s.lamport {
			s.lamport = ev.Lamport
		}
		// Replayed events are appended verbatim, NOT via record: they came
		// from the journal, and re-journaling them would duplicate the log.
		s.events = append(s.events, ev)
	}
	// A message pending at crash time was never recorded as sent: mint its
	// send event now (the history stays well-formed — the send follows
	// every restored event) and add it to the live backlog. Minted events
	// are new, so they go through record and reach the journal.
	for {
		p := s.replica.PendingMessage()
		if p == nil {
			break
		}
		payload := append([]byte(nil), p...)
		s.replica.OnSend()
		s.seq++
		s.lamport++
		s.record(Event{
			Kind: model.ActSend, Lamport: s.lamport,
			Origin: s.n.cfg.ID, Seq: s.seq, Payload: payload,
		})
		if s.jerr != nil {
			return s.jerr
		}
		if err := s.noteUpdate(s.n.cfg.ID, s.seq, s.lamport, payload); err != nil {
			return err
		}
	}
	return nil
}

// history snapshots this shard's recorded history (one loop turn).
func (s *shard) history() History {
	h := History{Node: s.n.cfg.ID, N: s.n.cfg.N, Store: s.n.cfg.Store.Name()}
	if s.n.cfg.Shards > 1 {
		h.Shard, h.Shards = s.idx, s.n.cfg.Shards
	}
	s.inLoop(func() { h.Events = append([]Event(nil), s.events...) })
	return h
}
