package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/gen"
	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/wire"
)

// This file is the node half of the dynamic-membership subsystem: joining
// through a seed (tJoin + Merkle anti-entropy catch-up), leaving, seeded
// gossip rounds that converge the membership view, and reconciling the
// replication links against that view. The pure state — the view's epoch
// rules and the Merkle forest — lives in internal/membership; this file
// only moves it over connections.
//
// A node is "static" until membership comes into play (Config.Join, a
// Leave call, or a tJoin/tGossip frame heard); static clusters pay nothing
// for any of this.

// errJoinRefused marks permanent join failures — divergent or missing
// history that retrying a different seed cannot fix. Everything else
// (connection errors, timeouts) is transient and retried.
var errJoinRefused = errors.New("cluster: join refused")

// Membership snapshots this node's membership view, sorted by replica ID.
func (n *Node) Membership() []membership.Member {
	return n.view.Members()
}

// Leave marks this node as departed at its current epoch and tells every
// alive member directly (gossip spreads it to anyone unreachable right
// now). The node keeps serving until Closed. Peers drop their replication
// links to a left member — including unacked queues, which is safe
// because a rejoin catches up via anti-entropy instead of retransmission.
func (n *Node) Leave() error {
	n.view.Merge(membership.Member{ID: int(n.cfg.ID), Addr: n.Addr(), Epoch: n.epoch.Load(), Left: true})
	n.markDynamic()
	for _, m := range n.view.Alive() {
		if m.ID == int(n.cfg.ID) || m.Addr == "" {
			continue
		}
		n.exchangeGossip(m.ID, m.Addr)
	}
	return nil
}

// markDynamic flips the node into dynamic-membership mode and starts the
// gossip loop (once). Called from goroutines the node already tracks.
func (n *Node) markDynamic() {
	if n.dynamic.Swap(true) {
		return
	}
	select {
	case <-n.done:
		return
	default:
	}
	n.wg.Add(1)
	go n.gossipLoop()
}

// gossipLoop runs seeded gossip rounds: every interval (with deterministic
// per-node jitter), exchange views with one random alive member. The rng
// is split from (Seed, ID) like the per-peer jitter streams, so -seed
// reproduces gossip target order.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	rng := rand.New(rand.NewSource(gen.SplitSeed(gen.SplitSeed(n.cfg.Seed, int(n.cfg.ID)), -1)))
	for {
		d := n.cfg.GossipInterval
		d += time.Duration(rng.Int63n(int64(d)/2 + 1))
		t := time.NewTimer(d)
		select {
		case <-n.done:
			t.Stop()
			return
		case <-t.C:
		}
		n.gossipOnce(rng)
	}
}

func (n *Node) gossipOnce(rng *rand.Rand) {
	var cands []membership.Member
	for _, m := range n.view.Alive() {
		if m.ID != int(n.cfg.ID) && m.Addr != "" {
			cands = append(cands, m)
		}
	}
	if len(cands) == 0 {
		return
	}
	m := cands[rng.Intn(len(cands))]
	n.exchangeGossip(m.ID, m.Addr)
	n.ensureLinks()
}

// exchangeGossip runs one transient gossip round trip with a member:
// push our view, pull theirs, merge. Best-effort.
func (n *Node) exchangeGossip(id int, addr string) bool {
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return false
	}
	if n.cfg.Faults != nil && id >= 0 && id < n.cfg.N {
		conn = n.cfg.Faults.WrapConn(conn, int(n.cfg.ID), id)
	}
	defer conn.Close()
	if !n.sendFrame(conn, func(w *wire.Writer) { appendGossip(w, n.cfg.ID, n.view.Members()) }) {
		return false
	}
	typ, r, err := readTyped(conn, n.cfg.MaxFrame, n.cfg.WriteTimeout)
	if err != nil || typ != tGossipAck {
		return false
	}
	ms, err := decodeMembers(r, n.cfg.N)
	if err != nil {
		return false
	}
	n.view.MergeAll(ms)
	return true
}

// serveGossip answers one inbound gossip exchange (transient connection):
// merge the sender's view, reply with ours, reconcile links.
func (n *Node) serveGossip(conn net.Conn, from model.ReplicaID, ms []membership.Member) {
	_ = from // the sender's record rides in ms like everyone else's
	n.view.MergeAll(ms)
	n.markDynamic()
	n.sendFrame(conn, func(w *wire.Writer) { appendGossipAck(w, n.view.Members()) })
	n.ensureLinks()
}

// ensureLinks reconciles the replication links against the membership
// view: connect to alive members we have no link to (offering the full
// backlog, pruned by their hello-ack watermark), drop links to members
// that left. Only a dynamic node reconciles — static clusters manage
// links explicitly via Connect.
func (n *Node) ensureLinks() {
	if !n.dynamic.Load() {
		return
	}
	missing := make(map[model.ReplicaID]string)
	var drop []model.ReplicaID
	n.peerMu.Lock()
	for _, m := range n.view.Members() {
		if m.ID == int(n.cfg.ID) || m.ID < 0 || m.ID >= n.cfg.N {
			continue
		}
		id := model.ReplicaID(m.ID)
		_, linked := n.peers[id]
		switch {
		case m.Left && linked:
			drop = append(drop, id)
		case !m.Left && !linked && m.Addr != "":
			missing[id] = m.Addr
		}
	}
	n.peerMu.Unlock()
	for _, id := range drop {
		n.disconnectPeer(id)
	}
	if len(missing) > 0 {
		n.connect(missing, true)
	}
}

// disconnectPeer tears down the replication link to a departed member,
// discarding its unacked queue (a rejoin recovers via anti-entropy).
func (n *Node) disconnectPeer(id model.ReplicaID) {
	n.peerMu.Lock()
	p := n.peers[id]
	delete(n.peers, id)
	n.peerMu.Unlock()
	if p != nil {
		p.close()
	}
}

// ---------------------------------------------------------------------------
// Joiner side

// join admits this node into a live cluster through the Config.Join seeds:
// announce via tJoin, adopt the seed's view, catch up on missing history
// via Merkle anti-entropy, then announce the new incarnation and link up.
// Blocks (retrying seeds with backoff) until one admits us, the node is
// closed, or a seed permanently refuses.
func (n *Node) join() error {
	type seed struct {
		id   model.ReplicaID
		addr string
	}
	var seeds []seed
	for id, addr := range n.cfg.Join {
		if id == n.cfg.ID || addr == "" {
			continue
		}
		if int(id) < 0 || int(id) >= n.cfg.N {
			return fmt.Errorf("cluster: join seed r%d outside cluster of %d", id, n.cfg.N)
		}
		seeds = append(seeds, seed{id, addr})
	}
	if len(seeds) == 0 {
		return errors.New("cluster: Config.Join lists no usable seed")
	}
	// Deterministic seed order (map iteration is not).
	for i := 1; i < len(seeds); i++ {
		for j := i; j > 0 && seeds[j].id < seeds[j-1].id; j-- {
			seeds[j], seeds[j-1] = seeds[j-1], seeds[j]
		}
	}
	backoff := n.cfg.DialBackoffMin
	for {
		for _, s := range seeds {
			err := n.joinVia(s.id, s.addr)
			if err == nil {
				n.finishJoin()
				return nil
			}
			if errors.Is(err, errJoinRefused) {
				return err
			}
		}
		t := time.NewTimer(backoff)
		select {
		case <-n.done:
			t.Stop()
			return ErrClosed
		case <-t.C:
		}
		if backoff *= 2; backoff > n.cfg.DialBackoffMax {
			backoff = n.cfg.DialBackoffMax
		}
	}
}

// finishJoin registers the (possibly epoch-bumped) incarnation in our own
// view, announces it to every alive member — so they stop reporting
// quiescence until their links reach us — and connects to all of them.
func (n *Node) finishJoin() {
	n.view.Merge(membership.Member{ID: int(n.cfg.ID), Addr: n.Addr(), Epoch: n.epoch.Load()})
	n.markDynamic()
	for _, m := range n.view.Alive() {
		if m.ID == int(n.cfg.ID) || m.Addr == "" {
			continue
		}
		n.exchangeGossip(m.ID, m.Addr)
	}
	n.ensureLinks()
}

// joinVia runs the whole join conversation against one seed. Transient
// failures return plain errors (the caller retries); divergent or missing
// history returns errJoinRefused.
func (n *Node) joinVia(seedID model.ReplicaID, addr string) error {
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return err
	}
	if n.cfg.Faults != nil {
		conn = n.cfg.Faults.WrapConn(conn, int(n.cfg.ID), int(seedID))
	}
	defer conn.Close()
	// Reads tolerate the donor's chunk pacing knob on top of the normal
	// write budget.
	readDeadline := n.cfg.WriteTimeout + 2*n.cfg.SyncChunkDelay

	if !n.sendFrame(conn, func(w *wire.Writer) {
		appendJoin(w, joinReq{From: n.cfg.ID, Epoch: n.epoch.Load(), Addr: n.Addr(), Codec: n.codec.ID(), Comp: n.comp})
	}) {
		return errors.New("cluster: join announce write failed")
	}
	typ, r, err := readTyped(conn, n.cfg.MaxFrame, readDeadline)
	if err != nil {
		return err
	}
	if typ != tJoinAck {
		return fmt.Errorf("cluster: join answered with frame type %d", typ)
	}
	// The joiner only reads bulk frames (the envelope is self-describing),
	// so the negotiated compression needs no state on this side.
	_, ms, _, err := decodeJoinAck(r, n.cfg.N)
	if err != nil {
		return err
	}
	n.view.MergeAll(ms)
	// Auto-epoch: a record of us that is left, or alive at a higher epoch,
	// would supersede our announcement — bump past it so the rejoin wins.
	if m, ok := n.view.Get(int(n.cfg.ID)); ok && (m.Left || m.Epoch > n.epoch.Load()) {
		n.epoch.Store(m.Epoch + 1)
	}

	// Digest exchange: per origin, what we hold vs what the donor holds.
	local := make([]originDigest, 0, n.cfg.N)
	if n.inLoop(func() {
		s := n.s0()
		for o := 0; o < n.cfg.N; o++ {
			local = append(local, originDigest{Origin: model.ReplicaID(o), Count: s.tree.Count(o), Root: s.tree.Root(o)})
		}
	}) != nil {
		return ErrClosed
	}
	if !n.sendFrame(conn, func(w *wire.Writer) { appendDigest(w, tDigest, local) }) {
		return errors.New("cluster: digest write failed")
	}
	typ, r, err = readTyped(conn, n.cfg.MaxFrame, readDeadline)
	if err != nil {
		return err
	}
	if typ != tDigestResp {
		return fmt.Errorf("cluster: digest answered with frame type %d", typ)
	}
	remote, err := decodeDigest(r, true)
	if err != nil {
		return err
	}
	rmap := make(map[model.ReplicaID]originDigest, len(remote))
	for _, d := range remote {
		rmap[d.Origin] = d
	}
	for _, ld := range local {
		rd, ok := rmap[ld.Origin]
		if !ok || rd.Count < ld.Count {
			continue // donor is behind us here; its own links catch it up
		}
		if rd.Count == ld.Count {
			if ld.Count > 0 && rd.Root != ld.Root {
				return n.refuseDivergent(conn, ld.Origin, ld.Count, readDeadline)
			}
			continue
		}
		if ld.Origin == n.cfg.ID {
			// The cluster holds broadcasts of ours that our log does not:
			// this data dir cannot be the one that minted them, and
			// re-minting seqs would fork the history.
			return fmt.Errorf("%w: the cluster holds %d of r%d's broadcasts but the local log has %d — rejoining as r%d needs its original log",
				errJoinRefused, rd.Count, n.cfg.ID, ld.Count, n.cfg.ID)
		}
		if ld.Count > 0 && rd.PrefixRoot != ld.Root {
			return n.refuseDivergent(conn, ld.Origin, ld.Count, readDeadline)
		}
		if err := n.pullRange(conn, ld.Origin, rd, readDeadline); err != nil {
			return err
		}
	}
	return nil
}

// pullRange catches one origin up to the donor's digest: request the
// missing range, apply each chunk in one event-loop turn (journaling in
// that turn), and ack only after — so a kill -9 mid-sync loses nothing an
// ack promised, and the restarted join pulls only what is still missing.
// The request carries cfg.SyncWindow as its credit window: the donor may
// stream that many chunks ahead of our cumulative acks, pipelining the
// transfer across the ack round-trip, while this side's apply-and-journal-
// before-ack turn is byte-for-byte the stop-and-wait one.
func (n *Node) pullRange(conn net.Conn, origin model.ReplicaID, rd originDigest, readDeadline time.Duration) error {
	for {
		var have uint64
		if n.inLoop(func() { have = n.s0().delivered[origin] }) != nil {
			return ErrClosed
		}
		if have >= rd.Count {
			break
		}
		if !n.sendFrame(conn, func(w *wire.Writer) {
			appendRangeReq(w, origin, have, rd.Count-have, uint64(n.cfg.SyncWindow))
		}) {
			return errors.New("cluster: range request write failed")
		}
		for have < rd.Count {
			typ, r, err := readTyped(conn, n.cfg.MaxFrame, readDeadline)
			if err != nil {
				return err
			}
			if typ != tRangeResp {
				return fmt.Errorf("cluster: range pull answered with frame type %d", typ)
			}
			us, err := decodeRangeResp(r)
			if err != nil {
				return err
			}
			if len(us) == 0 || us[0].Origin != origin {
				return errors.New("cluster: empty or mislabeled range chunk")
			}
			var cum uint64
			var applied int64
			var jerr error
			ackable := true
			if n.inLoop(func() {
				s := n.s0()
				for _, u := range us {
					before := s.delivered[u.Origin]
					cum, ackable = s.applyUpdate(u)
					if !ackable {
						jerr = s.jerr
						return
					}
					if s.delivered[u.Origin] > before {
						applied++
					}
				}
			}) != nil {
				return ErrClosed
			}
			if !ackable {
				return fmt.Errorf("cluster: journal failed during sync: %v", jerr)
			}
			n.syncPulled.Add(applied)
			n.cfg.Observer.AddSyncUpdates(applied)
			if !n.sendFrame(conn, func(w *wire.Writer) { appendAck(w, cum) }) {
				return errors.New("cluster: sync ack write failed")
			}
			if cum > have {
				have = cum
			}
		}
	}
	// End-to-end integrity: the prefix we now hold over the donor's count
	// must reproduce the donor's root, or something shipped wrong.
	var root membership.Hash
	if n.inLoop(func() { root = n.s0().tree.PrefixRoot(int(origin), rd.Count) }) != nil {
		return ErrClosed
	}
	if root != rd.Root {
		return fmt.Errorf("%w: origin r%d's pulled range fails digest verification", errJoinRefused, origin)
	}
	return nil
}

// refuseDivergent walks the donor's Merkle tree to localize where our
// history for origin stops matching, then refuses the join permanently: a
// divergent prefix means a corrupt log or one from a different cluster,
// and no range pull can reconcile it.
func (n *Node) refuseDivergent(conn net.Conn, origin model.ReplicaID, k uint64, readDeadline time.Duration) error {
	lo, hi, err := n.walkDivergence(conn, origin, k, readDeadline)
	if err != nil {
		return fmt.Errorf("%w: origin r%d history diverges within its first %d updates (walk failed: %v)", errJoinRefused, origin, k, err)
	}
	return fmt.Errorf("%w: origin r%d history diverges in updates [%d,%d) — local log is corrupt or from another cluster", errJoinRefused, origin, lo, hi)
}

// walkDivergence descends the Merkle tree over the first k updates of
// origin, at each level following the first child whose hash disagrees
// with the donor's, and returns the update range of the divergent leaf.
func (n *Node) walkDivergence(conn net.Conn, origin model.ReplicaID, k uint64, readDeadline time.Duration) (lo, hi uint64, err error) {
	level, index := membership.TopLevel(k), uint64(0)
	for level > 0 {
		found := false
		for c := uint64(0); c < 2 && !found; c++ {
			child := 2*index + c
			var lh membership.Hash
			var lok bool
			if n.inLoop(func() { lh, lok = n.s0().tree.NodeHash(int(origin), k, level-1, child) }) != nil {
				return 0, 0, ErrClosed
			}
			if !n.sendFrame(conn, func(w *wire.Writer) { appendTreeReq(w, origin, k, level-1, child) }) {
				return 0, 0, errors.New("tree request write failed")
			}
			typ, r, rerr := readTyped(conn, n.cfg.MaxFrame, readDeadline)
			if rerr != nil {
				return 0, 0, rerr
			}
			if typ != tTreeResp {
				return 0, 0, fmt.Errorf("tree walk answered with frame type %d", typ)
			}
			rh, rok, rerr := decodeTreeResp(r)
			if rerr != nil {
				return 0, 0, rerr
			}
			if lok != rok || (lok && lh != rh) {
				level, index = level-1, child
				found = true
			}
		}
		if !found {
			return 0, 0, errors.New("parent hash differs but no child does")
		}
	}
	return index * membership.LeafSpan, (index + 1) * membership.LeafSpan, nil
}

// ---------------------------------------------------------------------------
// Donor side

// serveJoin is the donor half of a join conversation (the joiner drives):
// admit the joiner into the view, link back so live updates flow during
// the sync, then answer digest, tree-walk, and range requests until the
// joiner hangs up.
func (n *Node) serveJoin(conn net.Conn, j joinReq) {
	if int(j.From) < 0 || int(j.From) >= n.cfg.N || j.From == n.cfg.ID {
		return
	}
	if n.cfg.Faults != nil {
		conn = n.cfg.Faults.WrapConn(conn, int(n.cfg.ID), int(j.From))
	}
	if j.Addr != "" {
		n.view.Merge(membership.Member{ID: int(j.From), Addr: j.Addr, Epoch: j.Epoch})
	}
	n.markDynamic()
	n.ensureLinks()
	chosen := negotiateCodec(n.codec.ID(), j.Codec)
	chosenComp := negotiateComp(n.comp, j.Comp)
	if !n.sendFrame(conn, func(w *wire.Writer) { appendJoinAck(w, chosen, n.view.Members(), chosenComp) }) {
		return
	}
	for {
		b, err := recvFrame(conn, n.cfg.MaxFrame)
		if err != nil {
			return
		}
		r := wire.NewReader(b)
		switch r.Uvarint() {
		case tDigest:
			ds, err := decodeDigest(r, false)
			if err != nil {
				return
			}
			resp := n.digestResp(ds)
			if !n.sendFrame(conn, func(w *wire.Writer) { appendDigest(w, tDigestResp, resp) }) {
				return
			}
		case tTreeReq:
			origin, prefix, level, index, err := decodeTreeReq(r)
			if err != nil || int(origin) < 0 || int(origin) >= n.cfg.N {
				return
			}
			var h membership.Hash
			var ok bool
			if n.inLoop(func() { h, ok = n.s0().tree.NodeHash(int(origin), prefix, level, index) }) != nil {
				return
			}
			if !n.sendFrame(conn, func(w *wire.Writer) { appendTreeResp(w, h, ok) }) {
				return
			}
		case tRangeReq:
			origin, from, count, window, err := decodeRangeReq(r)
			if err != nil || int(origin) < 0 || int(origin) >= n.cfg.N || count == 0 {
				return
			}
			if !n.serveRange(conn, origin, from, count, window, chosen, chosenComp) {
				return
			}
		default:
			return
		}
	}
}

// digestResp answers a joiner's digest with, per origin it asked about,
// our count and root plus the root over the joiner's own count — the
// prefix proof that lets it pull only [joinerCount, ourCount).
func (n *Node) digestResp(ds []originDigest) []originDigest {
	resp := make([]originDigest, 0, len(ds))
	n.inLoop(func() {
		s := n.s0()
		for _, d := range ds {
			o := int(d.Origin)
			if o < 0 || o >= n.cfg.N {
				continue
			}
			e := originDigest{Origin: d.Origin, Count: s.tree.Count(o), Root: s.tree.Root(o)}
			if d.Count <= e.Count {
				e.PrefixRoot = s.tree.PrefixRoot(o, d.Count)
			}
			resp = append(resp, e)
		}
	})
	return resp
}

// serveRangeMaxWindow caps the credit window a joiner may request: a
// hostile request must not make the donor flood an arbitrarily deep
// pipeline of unacked chunks.
const serveRangeMaxWindow = 1024

// serveRange streams one origin's updates [from, from+count) to a joiner
// in codec-sized chunks under a credit-based sliding window: up to window
// chunks may be in flight beyond the joiner's cumulative journal-backed
// acks, so a transfer of c chunks costs about 1+⌈c/W⌉ round-trips instead
// of stop-and-wait's 1+c. window comes from the joiner's tRangeReq (a
// pre-v4 request decodes as 1, which IS stop-and-wait — one chunk out, one
// ack back). Recoverability is untouched: the joiner still applies and
// journals every chunk before acking it, so a kill -9 mid-sync loses at
// most the unacked in-flight chunks, which the restarted join re-pulls.
//
// The joiner acks every chunk it consumes, in order, so the donor reads
// exactly one ack per chunk sent — inflight is a FIFO of chunk-end seqs
// and each ack retires its head. That bookkeeping (rather than trusting
// the cumulative value alone) also keeps the conversation aligned: no
// acks are left unread in the socket for serveJoin's dispatch loop to
// trip over. The negotiated codec governs chunking exactly like live
// batching: binary gets BatchMax-update chunks, the JSON floor one update
// per frame.
func (n *Node) serveRange(conn net.Conn, origin model.ReplicaID, from, count uint64, window uint64, chosen wire.CodecID, comp uint64) bool {
	if window < 1 {
		window = 1
	}
	if window > serveRangeMaxWindow {
		window = serveRangeMaxWindow
	}
	end := from + count
	chunkMax := 1
	if chosen == wire.CodecBinary && n.cfg.BatchMax > 0 {
		chunkMax = n.cfg.BatchMax
	}
	idx := from   // seq boundary of the next chunk to build
	acked := from // watermark the joiner has journaled (or consumed past)
	var inflight []uint64
	for {
		// Fill the window: send chunks while credit remains.
		for idx < end && uint64(len(inflight)) < window {
			var us []protoUpdate
			if n.inLoop(func() {
				all := n.s0().updates[origin]
				if end > uint64(len(all)) {
					end = uint64(len(all)) // donor holds less than promised
				}
				size := 0
				for i := idx; i < end; i++ {
					u := all[i]
					cost := len(u.Payload) + 32
					if len(us) > 0 && (len(us) >= chunkMax || size+cost > n.cfg.MaxFrame-64) {
						break
					}
					size += cost
					us = append(us, u)
				}
			}) != nil {
				return false
			}
			if len(us) == 0 {
				break // ran dry; end was clamped above
			}
			if !n.sendFrameComp(conn, comp, func(w *wire.Writer) { appendRangeResp(w, origin, us) }) {
				return false
			}
			n.syncServed.Add(int64(len(us)))
			idx = us[len(us)-1].Seq
			inflight = append(inflight, idx)
			if d := n.cfg.SyncChunkDelay; d > 0 {
				t := time.NewTimer(d)
				select {
				case <-n.done:
					t.Stop()
					return false
				case <-t.C:
				}
			}
		}
		if len(inflight) == 0 {
			return acked >= end
		}
		// Retire the oldest in-flight chunk against its ack.
		typ, r, err := readTyped(conn, n.cfg.MaxFrame, 0)
		if err != nil || typ != tAck {
			return false
		}
		cum := r.Uvarint()
		if r.Err() != nil {
			return false
		}
		head := inflight[0]
		inflight = inflight[1:]
		// A joiner that already held some of the chunk acks its (lower)
		// cumulative delivery; the chunk was still consumed, so credit at
		// least the chunk boundary — the stop-and-wait anti-stall rule.
		if cum < head {
			cum = head
		}
		if cum > acked {
			acked = cum
		}
	}
}

// ---------------------------------------------------------------------------
// Small conn helpers

// sendFrame builds one frame with a pooled writer and writes it with the
// node's frame accounting.
func (n *Node) sendFrame(conn net.Conn, build func(*wire.Writer)) bool {
	w := wire.GetWriter()
	build(w)
	ok := n.writeFrame(conn, w.Bytes(), n.cfg.MaxFrame)
	wire.PutWriter(w)
	return ok
}

// readTyped reads one frame (with an optional read deadline) and peels its
// type tag.
func readTyped(conn net.Conn, maxFrame int, deadline time.Duration) (uint64, *wire.Reader, error) {
	if deadline > 0 {
		conn.SetReadDeadline(time.Now().Add(deadline))
	}
	b, err := recvFrame(conn, maxFrame)
	if err != nil {
		return 0, nil, err
	}
	r := wire.NewReader(b)
	typ := r.Uvarint()
	return typ, r, r.Err()
}
