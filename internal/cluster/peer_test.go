package cluster

import (
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/wire"

	_ "repro/internal/store/lww"
)

// TestAckPruneReleasesPayloads is the regression for the queue[1:] pruning
// bug: re-slicing kept the backing array, whose dead head entries pinned
// every acked payload for as long as the link lived. Pruning must compact
// and zero the vacated slots so acked payloads become collectable.
func TestAckPruneReleasesPayloads(t *testing.T) {
	p := &peerSender{kick: make(chan struct{}, 1), queues: make([]peerQueue, 1)}
	const n = 64
	var finalized atomic.Int64
	for i := 1; i <= n; i++ {
		payload := make([]byte, 1024)
		runtime.SetFinalizer(&payload[0], func(*byte) { finalized.Add(1) })
		p.enqueue(0, protoUpdate{Origin: 0, Seq: uint64(i), Payload: payload})
	}
	p.ack(0, n-1) // everything but the newest update is acked

	deadline := time.Now().Add(5 * time.Second)
	for finalized.Load() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d acked payloads became collectable — pruning pins the queue's backing array",
				finalized.Load(), n-1)
		}
		runtime.GC()
		time.Sleep(time.Millisecond)
	}

	// The unacked tail must survive pruning intact.
	p.mu.Lock()
	defer p.mu.Unlock()
	if q := p.queues[0].queue; len(q) != 1 || q[0].Seq != n || q[0].Payload == nil {
		t.Fatalf("queue after prune = %+v, want the single unacked update", q)
	}
}

// TestOversizedUpdateFailStopsLink is the regression for the reconnect hot
// loop: an update over the frame limit fails EndFrame identically on every
// future connection, so the old treat-it-as-connection-death path redialed
// forever. The sender must latch the terminal error, stop reconnecting, and
// surface the condition in Stats.
func TestOversizedUpdateFailStopsLink(t *testing.T) {
	nodes := make([]*Node, 2)
	for i := range nodes {
		st, err := store.Open("lww", spec.MVRTypes(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig(model.ReplicaID(i), 2, st)
		cfg.MaxFrame = 2048
		nd, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	for i, nd := range nodes {
		peers := map[model.ReplicaID]string{model.ReplicaID(1 - i): nodes[1-i].Addr()}
		if err := nd.Connect(peers); err != nil {
			t.Fatal(err)
		}
	}

	// A small write proves the link works before the poison update.
	if _, err := nodes[0].Do("x", model.Write("small")); err != nil {
		t.Fatal(err)
	}
	// The oversized write succeeds locally (the frame limit is a transport
	// bound, not a store bound) but its broadcast can never travel.
	if _, err := nodes[0].Do("x", model.Write(model.Value(strings.Repeat("v", 4096)))); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for nodes[0].Stats().FailedLinks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("oversized update never fail-stopped the link")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var linkErr error
	if err := nodes[0].inLoop(func() { linkErr = nodes[0].peers[model.ReplicaID(1)].failure() }); err != nil {
		t.Fatal(err)
	}
	if linkErr == nil {
		t.Fatal("failed link has no latched error")
	} else if !strings.Contains(linkErr.Error(), "undeliverable") {
		t.Fatalf("latched error %q does not name the undeliverable update", linkErr)
	}

	// Fail-stop means no more redialing: the reconnect counter must stop
	// growing once the link is latched.
	base := nodes[0].Stats().Reconnects
	time.Sleep(300 * time.Millisecond) // many DialBackoffMax periods
	if got := nodes[0].Stats().Reconnects; got != base {
		t.Fatalf("failed link kept reconnecting: %d -> %d", base, got)
	}
}

// TestKickResetsRetransmitBackoff is the regression for stale backoff: an
// idle link that backed off to RetransmitMax made a brand new update wait
// RetransmitMax for its first loss check, because <-p.kick left rt alone.
// Against a server that accepts frames but never acks, the gap between a
// fresh write and its first retransmission must track RetransmitMin, not
// the backed-off ceiling.
func TestKickResetsRetransmitBackoff(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Black-hole server: reads every frame (timestamping tUpdate arrivals)
	// and never replies, so nothing is ever acked and the sender's
	// retransmission backoff climbs.
	type arrival struct {
		seq  uint64
		when time.Time
	}
	arrivals := make(chan arrival, 256)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					b, err := wire.ReadFrame(c, wire.DefaultMaxFrame)
					if err != nil {
						return
					}
					r := wire.NewReader(b)
					if r.Uvarint() == tUpdate {
						u, err := decodeUpdate(r)
						if err != nil {
							return
						}
						arrivals <- arrival{seq: u.Seq, when: time.Now()}
					}
				}
			}(conn)
		}
	}()

	st, err := store.Open("lww", spec.MVRTypes(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(0, 2, st)
	cfg.RetransmitMin = 25 * time.Millisecond
	cfg.RetransmitMax = 800 * time.Millisecond
	nd, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if err := nd.Connect(map[model.ReplicaID]string{1: ln.Addr().String()}); err != nil {
		t.Fatal(err)
	}

	waitSeq := func(seq uint64) arrival {
		t.Helper()
		for {
			select {
			case a := <-arrivals:
				if a.seq == seq {
					return a
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("update seq %d never arrived", seq)
			}
		}
	}

	// First write, then let the unacked retransmission backoff climb to max.
	if _, err := nd.Do("x", model.Write("first")); err != nil {
		t.Fatal(err)
	}
	waitSeq(1)
	time.Sleep(4 * cfg.RetransmitMax) // several doublings: rt is at the ceiling now

	// Drain queued retransmissions of seq 1, then write fresh traffic.
	for {
		select {
		case <-arrivals:
			continue
		default:
		}
		break
	}
	if _, err := nd.Do("x", model.Write("second")); err != nil {
		t.Fatal(err)
	}
	first := waitSeq(2)

	// The new update's first retransmission must come on a freshly reset
	// timer. Pre-fix it waited the backed-off rt (≥ RetransmitMax); the
	// bound is generous (half the ceiling) to absorb scheduler noise.
	retrans := waitSeq(2)
	if gap := retrans.when.Sub(first.when); gap >= cfg.RetransmitMax/2 {
		t.Fatalf("first retransmission after fresh traffic took %v — backoff was not reset (min %v, max %v)",
			gap, cfg.RetransmitMin, cfg.RetransmitMax)
	}
}

// TestClientOpTimeout is the regression for unbounded client I/O: against a
// node that accepts and reads but never replies, a Client with an op
// timeout must fail the call within the bound instead of hanging forever.
func TestClientOpTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Half-open in the application sense: consume requests, never
			// answer.
			go func(c net.Conn) {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()

	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetOpTimeout(100 * time.Millisecond)

	start := time.Now()
	_, err = c.Do("x", model.Write("v"))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Do against a mute server succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Do took %v to fail, want ~100ms", elapsed)
	}

	// Zero timeout stays unbounded (convergence tests rely on it): just
	// check the setter round-trips without disturbing the connection state.
	c.SetOpTimeout(0)
	if c.opTimeout != 0 {
		t.Fatal("SetOpTimeout(0) did not clear the bound")
	}
}
