package cluster

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/wire"
)

// peerSender owns this node's half of one replication link: the connection
// it dials to a single peer and the queue of updates that peer has not yet
// acknowledged. It provides the reliable half of eventual delivery
// (Definition 3): updates stay queued until cumulatively acked, are
// retransmitted with exponential backoff while unacked, and survive
// connection loss through a reconnect loop — the dial-side never gives up,
// so any network that heals eventually delivers.
type peerSender struct {
	node *Node
	peer model.ReplicaID
	addr string

	mu        sync.Mutex
	queue     []protoUpdate // unacked updates in seq order
	lastAcked uint64        // peer's cumulative ack
	maxSent   uint64        // highest seq ever written (retransmit accounting)
	conn      net.Conn      // live connection, nil while dialing

	kick chan struct{} // cap 1: new updates enqueued
	ackd chan struct{} // cap 1: ack progress observed
	done chan struct{}
	// closeOnce guards done: a sender can be closed from both node
	// shutdown and a chaos supervisor tearing a link down; closing an
	// already-closed channel would panic.
	closeOnce sync.Once

	// rng drives redial/retransmit jitter. It is per-peer and seeded from
	// (Config.Seed, node, peer) so -seed reproduces retransmission timing
	// and peers do not contend on the global math/rand lock. Only the run
	// goroutine touches it.
	rng *rand.Rand

	dials       atomic.Int64
	reconnects  atomic.Int64
	retransmits atomic.Int64
}

func newPeerSender(n *Node, peer model.ReplicaID, addr string) *peerSender {
	return &peerSender{
		node: n,
		peer: peer,
		addr: addr,
		kick: make(chan struct{}, 1),
		ackd: make(chan struct{}, 1),
		done: make(chan struct{}),
		rng:  rand.New(rand.NewSource(gen.SplitSeed(gen.SplitSeed(n.cfg.Seed, int(n.cfg.ID)), int(peer)))),
	}
}

// enqueue appends a freshly minted update to the unacked queue and nudges
// the writer. Called from the node's event loop.
func (p *peerSender) enqueue(u protoUpdate) {
	p.mu.Lock()
	p.queue = append(p.queue, u)
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// drained reports whether every enqueued update has been acked — the
// per-link half of the quiescence condition (Definition 17).
func (p *peerSender) drained() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue) == 0
}

// ack applies a cumulative acknowledgement, pruning the queue.
func (p *peerSender) ack(cum uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cum > p.lastAcked {
		p.lastAcked = cum
	}
	for len(p.queue) > 0 && p.queue[0].Seq <= p.lastAcked {
		p.queue = p.queue[1:]
	}
}

// next returns the first queued update beyond sent, plus whether writing it
// is a retransmission (it was already written on some connection).
func (p *peerSender) next(sent uint64) (u protoUpdate, ok, retransmit bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, q := range p.queue {
		if q.Seq > sent {
			retransmit = q.Seq <= p.maxSent
			if q.Seq > p.maxSent {
				p.maxSent = q.Seq
			}
			return q, true, retransmit
		}
	}
	return protoUpdate{}, false, false
}

// breakConn closes the live connection (if any) without stopping the
// sender — the reconnect loop redials. Tests use this to inject connection
// resets.
func (p *peerSender) breakConn() {
	p.mu.Lock()
	c := p.conn
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (p *peerSender) setConn(c net.Conn) {
	p.mu.Lock()
	p.conn = c
	p.mu.Unlock()
}

func (p *peerSender) close() {
	p.closeOnce.Do(func() { close(p.done) })
	p.breakConn()
}

// jitter stretches d by up to 50% (desynchronizing redial storms), drawn
// from the sender's seeded per-peer stream.
func (p *peerSender) jitter(d time.Duration) time.Duration {
	return d + time.Duration(p.rng.Int63n(int64(d)/2+1))
}

// sleep waits d plus jitter, or returns false if the sender is closing.
func (p *peerSender) sleep(d time.Duration) bool {
	t := time.NewTimer(p.jitter(d))
	defer t.Stop()
	select {
	case <-p.done:
		return false
	case <-t.C:
		return true
	}
}

// run is the sender's goroutine: dial with exponential backoff, serve the
// connection until it dies, repeat until closed.
func (p *peerSender) run() {
	defer p.node.wg.Done()
	cfg := p.node.cfg
	backoff := cfg.DialBackoffMin
	for {
		select {
		case <-p.done:
			return
		default:
		}
		// A cut link fails fast without touching the network: dialing
		// would only succeed at TCP and then die on the first shaped
		// write. Backoff still applies, so a healed link is retried on
		// the ordinary schedule.
		if cfg.Faults != nil && cfg.Faults.Cut(int(cfg.ID), int(p.peer)) {
			if !p.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > cfg.DialBackoffMax {
				backoff = cfg.DialBackoffMax
			}
			continue
		}
		conn, err := net.DialTimeout("tcp", p.addr, cfg.DialTimeout)
		if err != nil {
			if !p.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > cfg.DialBackoffMax {
				backoff = cfg.DialBackoffMax
			}
			continue
		}
		if cfg.Faults != nil {
			conn = cfg.Faults.WrapConn(conn, int(cfg.ID), int(p.peer))
		}
		if p.dials.Add(1) > 1 {
			p.reconnects.Add(1)
			cfg.Observer.AddReconnects(1)
		}
		backoff = cfg.DialBackoffMin
		p.serve(conn)
	}
}

// serve drives one live connection: announce ourselves, stream unacked
// updates in seq order, and retransmit from the peer's cumulative ack when
// the retransmission timer fires without progress. A fresh connection
// always rewinds to lastAcked, so nothing sent only on a dead connection is
// lost.
func (p *peerSender) serve(conn net.Conn) {
	cfg := p.node.cfg
	p.setConn(conn)
	defer func() {
		p.setConn(nil)
		conn.Close()
	}()

	if !p.write(conn, encodeHello(cfg.ID)) {
		return
	}

	// Ack reader: cumulative acks arrive on the same connection.
	connDead := make(chan struct{})
	go func() {
		defer close(connDead)
		for {
			b, err := wire.ReadFrame(conn, cfg.MaxFrame)
			if err != nil {
				return
			}
			r := wire.NewReader(b)
			if r.Uvarint() != tAck {
				return
			}
			cum := r.Uvarint()
			if r.Err() != nil {
				return
			}
			p.ack(cum)
			select {
			case p.ackd <- struct{}{}:
			default:
			}
		}
	}()

	p.mu.Lock()
	sent := p.lastAcked
	p.mu.Unlock()
	rt := cfg.RetransmitMin
	timer := time.NewTimer(rt)
	defer timer.Stop()
	for {
		for {
			u, ok, re := p.next(sent)
			if !ok {
				break
			}
			if re {
				p.retransmits.Add(1)
				cfg.Observer.AddRetransmits(1)
			}
			if !p.write(conn, encodeUpdate(u)) {
				// Close before waiting: a shaped write can fail (link cut)
				// while the TCP stream is healthy, and the ack reader only
				// exits once the connection is gone.
				conn.Close()
				<-connDead
				return
			}
			sent = u.Seq
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(rt)
		select {
		case <-p.done:
			conn.Close()
			<-connDead
			return
		case <-connDead:
			return
		case <-p.kick:
		case <-p.ackd:
			// Progress: prune happened in ack(); reset backoff.
			rt = cfg.RetransmitMin
		case <-timer.C:
			p.mu.Lock()
			outstanding := len(p.queue) > 0 && sent > p.lastAcked
			if outstanding {
				sent = p.lastAcked // rewind: rewrite everything unacked
			}
			p.mu.Unlock()
			if outstanding {
				if rt *= 2; rt > cfg.RetransmitMax {
					rt = cfg.RetransmitMax
				}
			}
		}
	}
}

// write frames one message with a write deadline, counting wire bytes.
func (p *peerSender) write(conn net.Conn, payload []byte) bool {
	conn.SetWriteDeadline(time.Now().Add(p.node.cfg.WriteTimeout))
	nBytes, err := wire.WriteFrame(conn, payload, p.node.cfg.MaxFrame)
	p.node.bytesOut.Add(int64(nBytes))
	return err == nil
}
