package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/wire"
)

// peerQueue is one shard's slice of a replication link: the unacked
// updates of that shard's seq domain plus the ack/retransmit watermarks
// that govern them. Shards have independent sequence counters, so the
// watermarks cannot be shared — a cumulative ack only means anything
// within its shard.
type peerQueue struct {
	queue     []protoUpdate // unacked updates in seq order
	lastAcked uint64        // peer's cumulative ack
	maxSent   uint64        // highest seq ever written (retransmit accounting)
}

// peerSender owns this node's half of one replication link: the connection
// it dials to a single peer and, per shard, the queue of updates that peer
// has not yet acknowledged. It provides the reliable half of eventual
// delivery (Definition 3): updates stay queued until cumulatively acked,
// are retransmitted with exponential backoff while unacked, and survive
// connection loss through a reconnect loop — the dial-side never gives up,
// so any network that heals eventually delivers. All shards multiplex over
// the one connection; frames name their shard (tShardBatch) once both ends
// have sealed an equal shard count.
type peerSender struct {
	node *Node
	peer model.ReplicaID
	addr string

	mu      sync.Mutex
	queues  []peerQueue // one per shard; index = shard
	conn    net.Conn    // live connection, nil while dialing
	failErr error       // terminal error, set once before failed flips

	// failed latches a terminal sender condition: the queue head can never
	// travel (an update over the frame limit fails EndFrame identically on
	// every future connection), or the peer announced a different shard
	// count (no frame we send can ever be applied correctly). The run loop
	// fail-stops instead of reconnecting forever; Node.Stats counts failed
	// links so the condition is observable.
	failed atomic.Bool

	kick chan struct{} // cap 1: new updates enqueued
	ackd chan struct{} // cap 1: ack progress observed
	done chan struct{}
	// closeOnce guards done: a sender can be closed from both node
	// shutdown and a chaos supervisor tearing a link down; closing an
	// already-closed channel would panic.
	closeOnce sync.Once

	// rng drives redial/retransmit jitter. It is per-peer and seeded from
	// (Config.Seed, node, peer) so -seed reproduces retransmission timing
	// and peers do not contend on the global math/rand lock. Only the run
	// goroutine touches it.
	rng *rand.Rand

	dials       atomic.Int64
	reconnects  atomic.Int64
	retransmits atomic.Int64
}

func newPeerSender(n *Node, peer model.ReplicaID, addr string) *peerSender {
	return &peerSender{
		node:   n,
		peer:   peer,
		addr:   addr,
		queues: make([]peerQueue, n.cfg.Shards),
		kick:   make(chan struct{}, 1),
		ackd:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(gen.SplitSeed(gen.SplitSeed(n.cfg.Seed, int(n.cfg.ID)), int(peer)))),
	}
}

// enqueue appends a freshly minted update to one shard's unacked queue and
// nudges the writer. Called from that shard's event loop.
func (p *peerSender) enqueue(shard int, u protoUpdate) {
	p.mu.Lock()
	p.queues[shard].queue = append(p.queues[shard].queue, u)
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// offerBacklog replaces one shard's queue wholesale with the shard's full
// self-backlog (Connect's full-backlog offer for shards beyond 0, whose
// offers cannot ride the registration turn — each shard's backlog snapshot
// must be taken in that shard's own loop turn). Updates the peer already
// acknowledged are dropped on the way in. Called from the shard's event
// loop with the backlog read in the same turn.
func (p *peerSender) offerBacklog(shard int, us []protoUpdate) {
	p.mu.Lock()
	q := &p.queues[shard]
	q.queue = q.queue[:0]
	for _, u := range us {
		if u.Seq > q.lastAcked {
			q.queue = append(q.queue, u)
		}
	}
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// drained reports whether every enqueued update of every shard has been
// acked — the per-link half of the quiescence condition (Definition 17).
func (p *peerSender) drained() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.queues {
		if len(p.queues[i].queue) != 0 {
			return false
		}
	}
	return true
}

// ack applies a cumulative acknowledgement to one shard's queue, pruning
// it. Pruning compacts in place (copy-down) rather than re-slicing:
// queue[1:] keeps the same backing array, whose dead head entries would
// pin every acked payload in memory for as long as the link lives. The
// vacated tail slots are zeroed so the payloads become collectable
// immediately.
func (p *peerSender) ack(shard int, cum uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := &p.queues[shard]
	if cum > q.lastAcked {
		q.lastAcked = cum
	}
	n := 0
	for n < len(q.queue) && q.queue[n].Seq <= q.lastAcked {
		n++
	}
	if n == 0 {
		return
	}
	m := copy(q.queue, q.queue[n:])
	for i := m; i < len(q.queue); i++ {
		q.queue[i] = protoUpdate{}
	}
	q.queue = q.queue[:m]
}

// nextBatch returns up to max queued updates of one shard beyond sent —
// the next frame's worth of work — plus how many of them are
// retransmissions (already written on some connection). sizeCap bounds the
// summed payload bytes so the batch fits the frame limit; the first update
// is always taken, so an oversized single payload still travels (and fails
// the frame limit at write time, exactly as it did unbatched).
func (p *peerSender) nextBatch(shard int, sent uint64, max, sizeCap int) (us []protoUpdate, retransmits int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := &p.queues[shard]
	size := 0
	for _, u := range q.queue {
		if u.Seq <= sent {
			continue
		}
		// Per-update budget: payload plus generous varint headroom.
		cost := len(u.Payload) + 32
		if len(us) > 0 && (len(us) >= max || size+cost > sizeCap) {
			break
		}
		if u.Seq <= q.maxSent {
			retransmits++
		} else {
			q.maxSent = u.Seq
		}
		size += cost
		us = append(us, u)
	}
	return us, retransmits
}

// breakConn closes the live connection (if any) without stopping the
// sender — the reconnect loop redials. Tests use this to inject connection
// resets.
func (p *peerSender) breakConn() {
	p.mu.Lock()
	c := p.conn
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (p *peerSender) setConn(c net.Conn) {
	p.mu.Lock()
	p.conn = c
	p.mu.Unlock()
}

func (p *peerSender) close() {
	p.closeOnce.Do(func() { close(p.done) })
	p.breakConn()
}

// fail latches err as the sender's terminal condition.
func (p *peerSender) fail(err error) {
	p.mu.Lock()
	if p.failErr == nil {
		p.failErr = err
	}
	p.mu.Unlock()
	p.failed.Store(true)
}

// failure returns the latched terminal error, or nil.
func (p *peerSender) failure() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failErr
}

// jitter stretches d by up to 50% (desynchronizing redial storms), drawn
// from the sender's seeded per-peer stream.
func (p *peerSender) jitter(d time.Duration) time.Duration {
	return d + time.Duration(p.rng.Int63n(int64(d)/2+1))
}

// sleep waits d plus jitter, or returns false if the sender is closing.
func (p *peerSender) sleep(d time.Duration) bool {
	t := time.NewTimer(p.jitter(d))
	defer t.Stop()
	select {
	case <-p.done:
		return false
	case <-t.C:
		return true
	}
}

// run is the sender's goroutine: dial with exponential backoff, serve the
// connection until it dies, repeat until closed.
func (p *peerSender) run() {
	defer p.node.wg.Done()
	cfg := p.node.cfg
	backoff := cfg.DialBackoffMin
	for {
		select {
		case <-p.done:
			return
		default:
		}
		// A cut link fails fast without touching the network: dialing
		// would only succeed at TCP and then die on the first shaped
		// write. Backoff still applies, so a healed link is retried on
		// the ordinary schedule.
		if cfg.Faults != nil && cfg.Faults.Cut(int(cfg.ID), int(p.peer)) {
			if !p.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > cfg.DialBackoffMax {
				backoff = cfg.DialBackoffMax
			}
			continue
		}
		conn, err := net.DialTimeout("tcp", p.addr, cfg.DialTimeout)
		if err != nil {
			if !p.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > cfg.DialBackoffMax {
				backoff = cfg.DialBackoffMax
			}
			continue
		}
		if cfg.Faults != nil {
			conn = cfg.Faults.WrapConn(conn, int(cfg.ID), int(p.peer))
		}
		if p.dials.Add(1) > 1 {
			p.reconnects.Add(1)
			cfg.Observer.AddReconnects(1)
		}
		backoff = cfg.DialBackoffMin
		p.serve(conn)
		if p.failed.Load() {
			// Terminal sender error: reconnecting cannot help, the same
			// frame fails the same way on every connection.
			return
		}
	}
}

// serve drives one live connection: announce ourselves, stream unacked
// updates in seq order (per shard), and retransmit from the peer's
// cumulative acks when the retransmission timer fires without progress. A
// fresh connection always rewinds each shard to its lastAcked, so nothing
// sent only on a dead connection is lost.
//
// The hello carries our codec preference and shard count; until the peer's
// tHelloAck arrives (on the same stream the acks use) the connection stays
// in the v1 fallback — one tUpdate per frame — so a v1 peer, which never
// acks the hello, simply never upgrades and nothing blocks. Once the
// binary codec is sealed, queued updates coalesce into tBatch frames of up
// to BatchMax. A sharded sender is stricter: it sends NOTHING until the
// ack confirms the peer speaks v5 with the same shard count (tShardBatch
// frames have no v1 fallback), and a count mismatch latches the link
// failed.
func (p *peerSender) serve(conn net.Conn) {
	cfg := p.node.cfg
	shardMode := cfg.Shards > 1
	p.setConn(conn)
	defer func() {
		p.setConn(nil)
		conn.Close()
	}()

	// One pooled writer builds every frame this connection sends: header and
	// payload land contiguously (BeginFrame/EndFrame), so each frame is one
	// conn.Write and zero per-frame allocations.
	enc := wire.GetWriter()
	defer wire.PutWriter(enc)

	enc.Reset()
	enc.BeginFrame()
	appendHello(enc, cfg.ID, p.node.codec.ID(), p.node.comp, uint64(cfg.Shards))
	if p.writeEnc(conn, enc, wire.CompNone) != nil {
		return
	}

	// negotiated holds the connection's sealed codec ID, negComp the sealed
	// compression algorithm. The ack-reader goroutine upgrades both when
	// tHelloAck arrives; the send loop reads them before building each
	// frame, so the upgrade applies from the next frame onward without any
	// blocking round-trip.
	var negotiated atomic.Uint64 // zero value = wire.CodecJSON, the floor
	var negComp atomic.Uint64    // zero value = wire.CompNone, the floor
	helloAcked := make(chan struct{})

	// Ack reader: cumulative acks (and the hello ack) arrive on the same
	// connection.
	connDead := make(chan struct{})
	go func() {
		defer close(connDead)
		acked := false
		for {
			b, err := recvFrame(conn, cfg.MaxFrame)
			if err != nil {
				return
			}
			r := wire.NewReader(b)
			switch r.Uvarint() {
			case tAck:
				cum := r.Uvarint()
				if r.Err() != nil || shardMode {
					return
				}
				p.ack(0, cum)
				select {
				case p.ackd <- struct{}{}:
				default:
				}
			case tShardAck:
				shard, cum, err := decodeShardAck(r)
				if err != nil || !shardMode || shard >= uint64(len(p.queues)) {
					return
				}
				p.ack(int(shard), cum)
				select {
				case p.ackd <- struct{}{}:
				default:
				}
			case tHelloAck:
				a, err := decodeHelloAck(r)
				if err != nil {
					return
				}
				if a.Shards != uint64(cfg.Shards) {
					// The peer speaks a different shard count (a pre-v5
					// peer decodes as 1): no frame this sender emits can
					// ever be applied correctly, on this connection or any
					// future one. Terminal.
					p.fail(fmt.Errorf("cluster: r%d→r%d shard count mismatch: local %d, peer %d",
						cfg.ID, p.peer, cfg.Shards, a.Shards))
					return
				}
				// Re-negotiate against our own preference: a confused peer
				// must not talk us into a codec (or compressor) we never
				// offered.
				negotiated.Store(uint64(negotiateCodec(p.node.codec.ID(), a.Codec)))
				negComp.Store(negotiateComp(p.node.comp, a.Comp))
				// The peer's delivered watermarks are pre-acks: they prune
				// the full-backlog offer down to what the peer is missing
				// before the first drain ships anything.
				if shardMode {
					for si, d := range a.ShardDelivered {
						if si < len(p.queues) && d > 0 {
							p.ack(si, d)
						}
					}
				} else if a.Delivered > 0 {
					p.ack(0, a.Delivered)
				}
				select {
				case p.ackd <- struct{}{}:
				default:
				}
				if !acked {
					acked = true
					close(helloAcked)
				}
			default:
				return
			}
		}
	}()

	p.mu.Lock()
	sent := make([]uint64, len(p.queues))
	backlog := 0
	for i := range p.queues {
		sent[i] = p.queues[i].lastAcked
		backlog += len(p.queues[i].queue)
	}
	p.mu.Unlock()

	if shardMode {
		// No v1 fallback exists for shard frames: nothing may be sent until
		// the peer's ack proves it speaks our shard count. The wait is
		// bounded by the connection itself — a peer that never acks (or
		// refused our hello) kills the connection, and run() redials.
		select {
		case <-helloAcked:
		case <-connDead:
			return
		case <-p.done:
			conn.Close()
			<-connDead
			return
		}
	} else if cfg.BatchMax > 0 && p.node.codec.ID() != wire.CodecJSON && backlog > 1 {
		// A reconnect with a deep backlog is exactly the case batching pays
		// off most, but the v1-until-acked rule would stream the whole queue
		// as singleton frames if the drain outruns the hello ack. So when
		// batching is even possible — we offered binary and there is more
		// than one update to ship — wait briefly for the ack before the
		// first drain. The wait is bounded: a v1 peer (which never acks)
		// costs one RetransmitMin stall per connection and then streams in
		// the fallback as before, and a lost ack still only ever costs
		// compactness, never data.
		t := time.NewTimer(cfg.RetransmitMin)
		select {
		case <-helloAcked:
		case <-connDead:
		case <-p.done:
		case <-t.C:
		}
		t.Stop()
	}
	rt := cfg.RetransmitMin
	timer := time.NewTimer(rt)
	defer timer.Stop()
	for {
		for si := range sent {
			for {
				batching := cfg.BatchMax > 0 &&
					(shardMode || wire.CodecID(negotiated.Load()) == wire.CodecBinary)
				max := 1
				if batching {
					max = cfg.BatchMax
				}
				// Headroom for the batch header and per-update varints;
				// payload budgeting is in nextBatch.
				us, re := p.nextBatch(si, sent[si], max, cfg.MaxFrame-64)
				if len(us) == 0 {
					break
				}
				if re > 0 {
					p.retransmits.Add(re)
					cfg.Observer.AddRetransmits(re)
				}
				enc.Reset()
				enc.BeginFrame()
				frameComp := wire.CompNone
				switch {
				case shardMode:
					// Shard frames are always batch-shaped; only
					// multi-update ones clear the compression floor in
					// practice, mirroring the single-shard rule.
					appendShardBatch(enc, si, us[0].Origin, us)
					if len(us) > 1 {
						frameComp = negComp.Load()
					}
				case len(us) == 1:
					appendUpdate(enc, us[0])
				default:
					// Only multi-update tBatch frames clear the compression
					// floor in practice; single updates stay raw so the
					// latency-sensitive path never touches the compressor.
					appendBatch(enc, us[0].Origin, us)
					frameComp = negComp.Load()
				}
				if err := p.writeEnc(conn, enc, frameComp); err != nil {
					var fse *wire.FrameSizeError
					if errors.As(err, &fse) && len(us) == 1 {
						// nextBatch always takes the first update alone when
						// it cannot share a frame, so an EndFrame oversize on
						// a singleton means this exact update can never
						// travel: retrying or reconnecting would hot-loop
						// forever on the same frame. Latch and fail-stop the
						// link.
						p.fail(fmt.Errorf("cluster: r%d→r%d shard %d update seq %d undeliverable: %w",
							cfg.ID, p.peer, si, us[0].Seq, err))
					}
					// Close before waiting: a shaped write can fail (link
					// cut) while the TCP stream is healthy, and the ack
					// reader only exits once the connection is gone.
					conn.Close()
					<-connDead
					return
				}
				sent[si] = us[len(us)-1].Seq
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(rt)
		select {
		case <-p.done:
			conn.Close()
			<-connDead
			return
		case <-connDead:
			return
		case <-p.kick:
			// Fresh traffic: reset the retransmission backoff. An idle
			// link that backed off to RetransmitMax must not make a brand
			// new update wait RetransmitMax for its first loss check.
			rt = cfg.RetransmitMin
		case <-p.ackd:
			// Progress: prune happened in ack(); reset backoff.
			rt = cfg.RetransmitMin
		case <-timer.C:
			p.mu.Lock()
			outstanding := false
			for si := range p.queues {
				q := &p.queues[si]
				if len(q.queue) > 0 && sent[si] > q.lastAcked {
					sent[si] = q.lastAcked // rewind: rewrite everything unacked
					outstanding = true
				}
			}
			p.mu.Unlock()
			if outstanding {
				if rt *= 2; rt > cfg.RetransmitMax {
					rt = cfg.RetransmitMax
				}
			}
		}
	}
}

// writeEnc seals the frame open in enc and writes it with a write
// deadline, counting wire bytes and frames. comp gates the large-frame
// compression envelope (wire.CompNone bypasses it and keeps the raw
// path's single contiguous conn.Write). The error is returned rather than
// collapsed to a bool because a *wire.FrameSizeError from EndFrame is a
// terminal condition — the frame can never fit — which the caller must
// distinguish from ordinary connection death.
func (p *peerSender) writeEnc(conn net.Conn, enc *wire.Writer, comp uint64) error {
	frame, err := enc.EndFrame(p.node.cfg.MaxFrame)
	if err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(p.node.cfg.WriteTimeout))
	if env := maybeCompressPayload(frame[4:], comp); env != nil {
		// The envelope lives in its own pooled writer; it is returned to
		// the pool only here, after the write, never inside
		// maybeCompressPayload — enc (which frame aliases) is still checked
		// out, and the same discipline keeps any future compressor from
		// recycling a buffer a caller still reads. The compressed path goes
		// through WriteFrame (header + payload, two writes).
		nBytes, werr := wire.WriteFrame(conn, env.Bytes(), p.node.cfg.MaxFrame)
		wire.PutWriter(env)
		p.node.bytesOut.Add(int64(nBytes))
		p.node.framesOut.Add(1)
		return werr
	}
	nBytes, werr := conn.Write(frame)
	p.node.bytesOut.Add(int64(nBytes))
	p.node.framesOut.Add(1)
	return werr
}
