package cluster

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/wire"
)

func TestHelloV2RoundTrip(t *testing.T) {
	w := wire.NewWriter()
	appendHello(w, 5, wire.CodecBinary, wire.CompFlate, 4)
	r := wire.NewReader(w.Bytes())
	if typ := r.Uvarint(); typ != tHello {
		t.Fatalf("type = %d, want tHello", typ)
	}
	h, err := decodeHello(r)
	if err != nil {
		t.Fatal(err)
	}
	if h.From != 5 || h.Version != helloVersion || h.Codec != wire.CodecBinary || h.Comp != wire.CompFlate || h.Shards != 4 {
		t.Fatalf("hello = %+v", h)
	}
}

// TestHelloV3Compat pins the v4 extension's back-compat: a v3-shaped hello
// (version and codec, no compression ID) decodes with CompNone.
func TestHelloV3Compat(t *testing.T) {
	w := wire.NewWriter()
	w.Uvarint(uint64(7))
	w.Uvarint(3)
	w.Uvarint(uint64(wire.CodecBinary))
	h, err := decodeHello(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.From != 7 || h.Version != 3 || h.Codec != wire.CodecBinary || h.Comp != wire.CompNone || h.Shards != 1 {
		t.Fatalf("v3 hello = %+v, want comp none, one shard", h)
	}
}

// TestHelloV1Compat pins the compatibility contract in both directions: a
// bare v1 hello decodes as version 1 with the JSON codec, and a v2 hello's
// From field sits exactly where a v1 receiver reads it.
func TestHelloV1Compat(t *testing.T) {
	h, err := decodeHello(wire.NewReader(encodeHello(3)[1:])) // strip type tag
	if err != nil {
		t.Fatal(err)
	}
	if h.From != 3 || h.Version != 1 || h.Codec != wire.CodecJSON {
		t.Fatalf("v1 hello = %+v, want {3 1 json}", h)
	}

	w := wire.NewWriter()
	appendHello(w, 3, wire.CodecBinary, wire.CompFlate, 1)
	r := wire.NewReader(w.Bytes())
	r.Uvarint() // type, as the v1 receiver reads it
	if from := r.Uvarint(); from != 3 || r.Err() != nil {
		t.Fatalf("v1 read of v2 hello: from = %d, err %v", from, r.Err())
	}
	// Whatever trails is the extension the v1 receiver ignores.
}

func TestHelloAckRoundTrip(t *testing.T) {
	w := wire.NewWriter()
	appendHelloAck(w, wire.CodecBinary, 42, wire.CompFlate, 4, []uint64{42, 7, 0, 3})
	r := wire.NewReader(w.Bytes())
	if typ := r.Uvarint(); typ != tHelloAck {
		t.Fatalf("type = %d, want tHelloAck", typ)
	}
	a, err := decodeHelloAck(r)
	if err != nil {
		t.Fatal(err)
	}
	if a.Codec != wire.CodecBinary || a.Delivered != 42 || a.Comp != wire.CompFlate || a.Shards != 4 {
		t.Fatalf("ack = %+v, want (binary, 42, flate, 4 shards)", a)
	}
	if len(a.ShardDelivered) != 4 || a.ShardDelivered[0] != 42 || a.ShardDelivered[1] != 7 ||
		a.ShardDelivered[2] != 0 || a.ShardDelivered[3] != 3 {
		t.Fatalf("shard watermarks = %v, want [42 7 0 3]", a.ShardDelivered)
	}

	// A v2 ack (no trailing watermark) still decodes, with delivered 0:
	// the dialer then offers its full backlog and cumulative dedup absorbs
	// the re-offers, exactly the pre-v3 behavior. No compression ID either,
	// so the link stays uncompressed, and no shard count, so single-shard.
	w = wire.NewWriter()
	w.Uvarint(helloVersion)
	w.Uvarint(uint64(wire.CodecJSON))
	a, err = decodeHelloAck(wire.NewReader(w.Bytes()))
	if err != nil || a.Codec != wire.CodecJSON || a.Delivered != 0 || a.Comp != wire.CompNone || a.Shards != 1 {
		t.Fatalf("v2 ack = (%+v, %v), want (json, 0, none, 1 shard)", a, err)
	}

	// A v3 ack (watermark but no compression ID) also decodes with CompNone
	// and one shard.
	w = wire.NewWriter()
	w.Uvarint(helloVersion)
	w.Uvarint(uint64(wire.CodecBinary))
	w.Uvarint(9)
	a, err = decodeHelloAck(wire.NewReader(w.Bytes()))
	if err != nil || a.Codec != wire.CodecBinary || a.Delivered != 9 || a.Comp != wire.CompNone || a.Shards != 1 {
		t.Fatalf("v3 ack = (%+v, %v), want (binary, 9, none, 1 shard)", a, err)
	}

	// A v4 ack (compression ID but no shard count) also decodes single-shard.
	w = wire.NewWriter()
	w.Uvarint(helloVersion)
	w.Uvarint(uint64(wire.CodecBinary))
	w.Uvarint(9)
	w.Uvarint(wire.CompFlate)
	a, err = decodeHelloAck(wire.NewReader(w.Bytes()))
	if err != nil || a.Comp != wire.CompFlate || a.Shards != 1 || a.ShardDelivered != nil {
		t.Fatalf("v4 ack = (%+v, %v), want (flate, 1 shard, no watermarks)", a, err)
	}
}

// TestShardBatchRoundTrip pins the v5 shard-multiplexed frames: a
// tShardBatch carries the shard index ahead of the tBatch layout, and a
// tShardAck pairs the shard with its cumulative ack.
func TestShardBatchRoundTrip(t *testing.T) {
	us := []protoUpdate{
		{Origin: 2, Seq: 1, Lamport: 10, Payload: []byte("alpha")},
		{Origin: 2, Seq: 2, Lamport: 11, Payload: nil},
	}
	w := wire.NewWriter()
	appendShardBatch(w, 3, 2, us)
	r := wire.NewReader(w.Bytes())
	if typ := r.Uvarint(); typ != tShardBatch {
		t.Fatalf("type = %d, want tShardBatch", typ)
	}
	shard, got, err := decodeShardBatch(r)
	if err != nil {
		t.Fatal(err)
	}
	if shard != 3 || len(got) != len(us) {
		t.Fatalf("shard %d with %d updates, want shard 3 with %d", shard, len(got), len(us))
	}
	for i := range us {
		if got[i].Origin != us[i].Origin || got[i].Seq != us[i].Seq ||
			got[i].Lamport != us[i].Lamport || !bytes.Equal(got[i].Payload, us[i].Payload) {
			t.Fatalf("update %d = %+v, want %+v", i, got[i], us[i])
		}
	}

	w = wire.NewWriter()
	appendShardAck(w, 5, 99)
	r = wire.NewReader(w.Bytes())
	if typ := r.Uvarint(); typ != tShardAck {
		t.Fatalf("type = %d, want tShardAck", typ)
	}
	s, cum, err := decodeShardAck(r)
	if err != nil || s != 5 || cum != 99 {
		t.Fatalf("shard ack = (%d, %d, %v), want (5, 99, nil)", s, cum, err)
	}
}

func TestNegotiateComp(t *testing.T) {
	for _, tc := range []struct {
		a, b, want uint64
	}{
		{wire.CompFlate, wire.CompFlate, wire.CompFlate},
		{wire.CompFlate, wire.CompNone, wire.CompNone},
		{wire.CompNone, wire.CompFlate, wire.CompNone},
		{wire.CompNone, wire.CompNone, wire.CompNone},
		{wire.CompFlate, 7, wire.CompFlate}, // newer peer: min wins
		{7, 9, wire.CompNone},               // both unknown: off
	} {
		if got := negotiateComp(tc.a, tc.b); got != tc.want {
			t.Fatalf("negotiateComp(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestNegotiateCodec(t *testing.T) {
	for _, tc := range []struct {
		a, b, want wire.CodecID
	}{
		{wire.CodecBinary, wire.CodecBinary, wire.CodecBinary},
		{wire.CodecBinary, wire.CodecJSON, wire.CodecJSON},
		{wire.CodecJSON, wire.CodecBinary, wire.CodecJSON},
		{wire.CodecJSON, wire.CodecJSON, wire.CodecJSON},
		{wire.CodecBinary, wire.CodecID(99), wire.CodecBinary}, // newer peer: min wins
		{wire.CodecID(99), wire.CodecID(98), wire.CodecJSON},   // both unknown: fallback
	} {
		if got := negotiateCodec(tc.a, tc.b); got != tc.want {
			t.Fatalf("negotiateCodec(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	us := []protoUpdate{
		{Origin: 2, Seq: 1, Lamport: 10, Payload: []byte("alpha")},
		{Origin: 2, Seq: 2, Lamport: 11, Payload: nil},
		{Origin: 2, Seq: 3, Lamport: 12, Payload: []byte{0, 1, 2, 255}},
	}
	w := wire.NewWriter()
	appendBatch(w, 2, us)
	r := wire.NewReader(w.Bytes())
	if typ := r.Uvarint(); typ != tBatch {
		t.Fatalf("type = %d, want tBatch", typ)
	}
	got, err := decodeBatch(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(us) {
		t.Fatalf("decoded %d updates, want %d", len(got), len(us))
	}
	for i := range us {
		if got[i].Origin != us[i].Origin || got[i].Seq != us[i].Seq ||
			got[i].Lamport != us[i].Lamport || !bytes.Equal(got[i].Payload, us[i].Payload) {
			t.Fatalf("update %d = %+v, want %+v", i, got[i], us[i])
		}
	}
}

func TestBatchImplausibleCountRejected(t *testing.T) {
	w := wire.NewWriter()
	w.Uvarint(3)       // origin
	w.Uvarint(1 << 40) // absurd count
	r := wire.NewReader(w.Bytes())
	if us, err := decodeBatch(r); err == nil {
		t.Fatalf("decoded %d updates from implausible count", len(us))
	}
}

// TestResponseValueCountBoundary is the regression for the decodeResponse
// guard: a declared value count of exactly Remaining+1 slipped past the old
// check and allocated for a count the buffer cannot hold.
func TestResponseValueCountBoundary(t *testing.T) {
	w := wire.NewWriter()
	w.Uvarint(1)        // reqID
	w.Uvarint(1)        // ok
	w.Varint(0)         // count
	w.Uvarint(1)        // hasValues
	w.Uvarint(3)        // declared values...
	w.Raw([]byte{0, 0}) // ...but only 2 bytes remain: 3 == Remaining+1
	r := wire.NewReader(w.Bytes())
	if _, _, err := decodeResponse(r); err == nil {
		t.Fatal("value count Remaining+1 accepted")
	}

	// The boundary itself must still work: n one-byte (empty) values.
	ok := encodeResponse(7, model.Response{OK: true, Values: []model.Value{"", ""}})
	r = wire.NewReader(ok)
	r.Uvarint() // type
	id, resp, err := decodeResponse(r)
	if err != nil || id != 7 || len(resp.Values) != 2 {
		t.Fatalf("valid boundary response: id %d resp %+v err %v", id, resp, err)
	}
}

func sampleEventsBinary() []Event {
	return []Event{
		{
			Kind: model.ActDo, Lamport: 4, Object: "x1",
			Op:       model.Operation{Kind: model.OpWrite, Arg: "v", Delta: -3},
			Rval:     model.Response{OK: true, Values: []model.Value{"a", ""}, Count: 2},
			Dot:      model.Dot{Origin: 1, Seq: 9},
			Frontier: []uint64{3, 0, 7},
		},
		{
			Kind: model.ActDo, Lamport: 5, Object: "x2",
			Op:   model.Operation{Kind: model.OpRead},
			Rval: model.Response{OK: true}, // nil Values must stay nil
		},
		{Kind: model.ActSend, Lamport: 6, Origin: 1, Seq: 10, Payload: []byte{1, 2, 3}},
		{Kind: model.ActSend, Lamport: 7, Origin: 1, Seq: 11}, // nil payload
		{Kind: model.ActReceive, Lamport: 8, Origin: 0, Seq: 4, Payload: []byte("remote")},
	}
}

// TestEventBinaryRoundTrip checks the binary event codec against the JSON
// one: every event must round-trip to the same JSON form, which is how the
// audit pipeline will see it after a history transfer or journal recovery.
func TestEventBinaryRoundTrip(t *testing.T) {
	for i, ev := range sampleEventsBinary() {
		w := wire.NewWriter()
		if err := AppendEventBinary(w, ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		r := wire.NewReader(w.Bytes())
		got, err := DecodeEventBinary(r)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if r.Remaining() != 0 {
			t.Fatalf("event %d: %d bytes left over", i, r.Remaining())
		}
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(ev)
		if !bytes.Equal(gj, wj) {
			t.Fatalf("event %d:\n got %s\nwant %s", i, gj, wj)
		}
	}
}

func TestHistoryBinaryRoundTrip(t *testing.T) {
	h := History{Node: 2, N: 3, Store: "causal", Events: sampleEventsBinary()}
	w := wire.NewWriter()
	if err := appendHistory(w, h); err != nil {
		t.Fatal(err)
	}
	got, err := decodeHistory(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(h)
	if !bytes.Equal(gj, wj) {
		t.Fatalf("history:\n got %s\nwant %s", gj, wj)
	}
}

func TestStatsBinaryRoundTrip(t *testing.T) {
	s := Stats{
		Node: 1, Store: "lww", Codec: "binary",
		Ops: 100, Sends: 40, Receives: 38, Events: 178,
		BytesOut: 4096, FramesOut: 52, Retransmits: 2, Reconnects: 1,
		DupFrames: 3, GapFrames: 4, Violations: 0, Quiesced: true,
	}
	w := wire.NewWriter()
	appendStats(w, s)
	got, err := decodeStats(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(s)
	if !bytes.Equal(gj, wj) {
		t.Fatalf("stats:\n got %s\nwant %s", gj, wj)
	}

	// A sharded node's stats carry the per-shard breakdowns (trailing v5
	// extension) and must survive the round trip too.
	s.Shards = 2
	s.ShardOps = []int64{60, 40}
	s.ShardSends = []int64{25, 15}
	s.ShardReceives = []int64{20, 18}
	s.ShardEvents = []int64{105, 73}
	w = wire.NewWriter()
	appendStats(w, s)
	got, err = decodeStats(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gj, _ = json.Marshal(got)
	wj, _ = json.Marshal(s)
	if !bytes.Equal(gj, wj) {
		t.Fatalf("sharded stats:\n got %s\nwant %s", gj, wj)
	}
}

// TestGoldenWireVectors pins the wire format byte-for-byte against files in
// testdata/golden: a refactor that changes any encoding must consciously
// regenerate them (UPDATE_GOLDEN=1 go test ./internal/cluster/), because a
// silent change breaks mixed-version clusters and old journals.
func TestGoldenWireVectors(t *testing.T) {
	enc := func(f func(w *wire.Writer)) []byte {
		w := wire.NewWriter()
		f(w)
		return w.Bytes()
	}
	vectors := []struct {
		name string
		data []byte
	}{
		{"hello_v2", enc(func(w *wire.Writer) { appendHello(w, 2, wire.CodecBinary, wire.CompFlate, 1) })},
		{"hello_ack", enc(func(w *wire.Writer) { appendHelloAck(w, wire.CodecJSON, 17, wire.CompFlate, 1, nil) })},
		{"hello_sharded", enc(func(w *wire.Writer) { appendHello(w, 2, wire.CodecBinary, wire.CompFlate, 8) })},
		{"hello_ack_sharded", enc(func(w *wire.Writer) {
			appendHelloAck(w, wire.CodecBinary, 17, wire.CompFlate, 4, []uint64{17, 0, 9, 2})
		})},
		{"shard_batch", enc(func(w *wire.Writer) {
			appendShardBatch(w, 3, 1, []protoUpdate{
				{Origin: 1, Seq: 7, Lamport: 300, Payload: []byte{0xca, 0xfe}},
				{Origin: 1, Seq: 8, Lamport: 301, Payload: []byte{0xba, 0xbe, 0x00}},
			})
		})},
		{"shard_ack", enc(func(w *wire.Writer) { appendShardAck(w, 3, 130) })},
		{"update", enc(func(w *wire.Writer) {
			appendUpdate(w, protoUpdate{Origin: 1, Seq: 7, Lamport: 300, Payload: []byte{0xca, 0xfe}})
		})},
		{"batch", enc(func(w *wire.Writer) {
			appendBatch(w, 1, []protoUpdate{
				{Origin: 1, Seq: 7, Lamport: 300, Payload: []byte{0xca, 0xfe}},
				{Origin: 1, Seq: 8, Lamport: 301, Payload: []byte{0xba, 0xbe, 0x00}},
			})
		})},
		{"ack", encodeAck(130)},
		{"stats_req_binary", encodeStructuredReq(tStats, wire.CodecBinary, wire.CompFlate)},
		{"event_do", enc(func(w *wire.Writer) {
			if err := AppendEventBinary(w, sampleEventsBinary()[0]); err != nil {
				t.Fatal(err)
			}
		})},
		{"event_send", enc(func(w *wire.Writer) {
			if err := AppendEventBinary(w, sampleEventsBinary()[2]); err != nil {
				t.Fatal(err)
			}
		})},
		{"join", enc(func(w *wire.Writer) {
			appendJoin(w, joinReq{From: 2, Epoch: 3, Addr: "127.0.0.1:7002", Codec: wire.CodecBinary, Comp: wire.CompFlate})
		})},
		{"range_req_windowed", enc(func(w *wire.Writer) {
			appendRangeReq(w, 1, 40, 25, 8)
		})},
		{"digest", enc(func(w *wire.Writer) {
			appendDigest(w, tDigest, []originDigest{
				{Origin: 0, Count: 33, Root: membership.HashUpdate(0, 1, []byte("x"))},
				{Origin: 1, Count: 0},
			})
		})},
		{"range_resp", enc(func(w *wire.Writer) {
			appendRangeResp(w, 1, []protoUpdate{
				{Origin: 1, Seq: 7, Lamport: 300, Payload: []byte{0xca, 0xfe}},
				{Origin: 1, Seq: 8, Lamport: 301, Payload: []byte{0xba, 0xbe, 0x00}},
			})
		})},
		{"compressed_envelope", func() []byte {
			raw := enc(func(w *wire.Writer) {
				appendRangeResp(w, 1, []protoUpdate{
					{Origin: 1, Seq: 7, Lamport: 300, Payload: bytes.Repeat([]byte("abcdefgh"), 128)},
				})
			})
			env := maybeCompressPayload(raw, wire.CompFlate)
			if env == nil {
				t.Fatal("compressed_envelope vector did not compress")
			}
			b := append([]byte(nil), env.Bytes()...)
			wire.PutWriter(env)
			return b
		}()},
	}
	dir := filepath.Join("testdata", "golden")
	update := os.Getenv("UPDATE_GOLDEN") != ""
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range vectors {
		path := filepath.Join(dir, v.name+".hex")
		got := hex.EncodeToString(v.data) + "\n"
		if update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run UPDATE_GOLDEN=1 go test to generate)", v.name, err)
		}
		if got != string(want) {
			t.Errorf("%s: encoding changed:\n got %s want %s", v.name, got, want)
		}
	}
}

// FuzzDecodeBatch throws arbitrary bytes at the batch decoder: it must
// never panic or over-allocate, and everything it accepts must re-encode to
// an equivalent batch (decode∘encode fixed point).
func FuzzDecodeBatch(f *testing.F) {
	seed := func(f2 func(w *wire.Writer)) []byte {
		w := wire.NewWriter()
		f2(w)
		return w.Bytes()
	}
	f.Add(seed(func(w *wire.Writer) {
		appendBatch(w, 0, []protoUpdate{{Origin: 0, Seq: 1, Lamport: 1, Payload: []byte("p")}})
	})[1:]) // bodies only: the caller strips the type tag
	f.Add(seed(func(w *wire.Writer) {
		appendBatch(w, 2, []protoUpdate{
			{Origin: 2, Seq: 1, Lamport: 5, Payload: nil},
			{Origin: 2, Seq: 2, Lamport: 6, Payload: bytes.Repeat([]byte{7}, 100)},
		})
	})[1:])
	f.Add(seed(func(w *wire.Writer) {
		w.Uvarint(1)
		w.Uvarint(1 << 40) // implausible count
	}))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		us, err := decodeBatch(wire.NewReader(b))
		if err != nil {
			return
		}
		if len(us) == 0 {
			return
		}
		w := wire.NewWriter()
		appendBatch(w, us[0].Origin, us)
		r := wire.NewReader(w.Bytes())
		if typ := r.Uvarint(); typ != tBatch {
			t.Fatalf("re-encode type = %d", typ)
		}
		again, err := decodeBatch(r)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if len(again) != len(us) {
			t.Fatalf("re-decode %d updates, want %d", len(again), len(us))
		}
		for i := range us {
			if again[i].Seq != us[i].Seq || again[i].Lamport != us[i].Lamport ||
				!bytes.Equal(again[i].Payload, us[i].Payload) {
				t.Fatalf("update %d drifted: %+v vs %+v", i, again[i], us[i])
			}
		}
	})
}

// FuzzDecodeEventBinary guards the event decoder the journal and history
// transfers rely on.
func FuzzDecodeEventBinary(f *testing.F) {
	for _, ev := range sampleEventsBinary() {
		w := wire.NewWriter()
		if err := AppendEventBinary(w, ev); err != nil {
			f.Fatal(err)
		}
		f.Add(w.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		ev, err := DecodeEventBinary(wire.NewReader(b))
		if err != nil {
			return
		}
		w := wire.NewWriter()
		if err := AppendEventBinary(w, ev); err != nil {
			t.Fatalf("decoded event does not re-encode: %v", err)
		}
		again, err := DecodeEventBinary(wire.NewReader(w.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded event does not decode: %v", err)
		}
		gj, _ := json.Marshal(again)
		wj, _ := json.Marshal(ev)
		if !bytes.Equal(gj, wj) {
			t.Fatalf("event drifted:\n%s\n%s", gj, wj)
		}
	})
}

var _ = fmt.Sprintf // keep fmt available for debugging edits
