package cluster

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/wire"
)

// This file is the binary (wire.Binary) encoding of the cluster's
// structured records: events, histories, and stats snapshots. The JSON
// encoding of the same records — the wire.JSON fallback — is whatever
// encoding/json produces for the struct tags in history.go; the binary
// form exists because JSON pays for field names on every record and
// base64-expands every payload by a third, overhead that swamps the
// metadata bytes Theorem 12 actually bounds.
//
// Layout (all integers varint/uvarint, strings and byte fields
// length-prefixed):
//
//	event   = kind lamport body
//	body    = do | transfer                 (by kind)
//	do      = object opKind opArg opDelta rvalFlags rvalCount
//	          [nValues value*] dotOrigin dotSeq [nFrontier frontier*]
//	transfer= origin seq [payload]          (send and receive)
//
// rvalFlags packs presence bits (OK, Values non-nil); the frontier and
// payload fields carry their own presence bits so nil round-trips as nil.
// The encoding is versioned from outside: connections negotiate it via the
// hello exchange and journal records tag it per record, so this layout
// itself carries no version byte.

const (
	rvalOK        = 1 << 0
	rvalHasValues = 1 << 1
)

// AppendEventBinary appends ev's binary encoding to w. It is exported for
// internal/durable, which stamps journal records with the same codec the
// transport negotiates.
func AppendEventBinary(w *wire.Writer, ev Event) error {
	w.Uvarint(uint64(ev.Kind))
	w.Uvarint(ev.Lamport)
	switch ev.Kind {
	case model.ActDo:
		w.String(string(ev.Object))
		w.Uvarint(uint64(ev.Op.Kind))
		w.String(string(ev.Op.Arg))
		w.Varint(ev.Op.Delta)
		flags := uint64(0)
		if ev.Rval.OK {
			flags |= rvalOK
		}
		if ev.Rval.Values != nil {
			flags |= rvalHasValues
		}
		w.Uvarint(flags)
		w.Varint(ev.Rval.Count)
		if ev.Rval.Values != nil {
			w.Uvarint(uint64(len(ev.Rval.Values)))
			for _, v := range ev.Rval.Values {
				w.String(string(v))
			}
		}
		w.Dot(ev.Dot)
		if ev.Frontier == nil {
			w.Uvarint(0)
		} else {
			w.Uvarint(1)
			w.Uvarint(uint64(len(ev.Frontier)))
			for _, s := range ev.Frontier {
				w.Uvarint(s)
			}
		}
	case model.ActSend, model.ActReceive:
		w.Uvarint(uint64(ev.Origin))
		w.Uvarint(ev.Seq)
		if ev.Payload == nil {
			w.Uvarint(0)
		} else {
			w.Uvarint(1)
			w.Uvarint(uint64(len(ev.Payload)))
			w.Raw(ev.Payload)
		}
	default:
		return fmt.Errorf("cluster: cannot encode event kind %v", ev.Kind)
	}
	return nil
}

// DecodeEventBinary decodes one event encoded by AppendEventBinary. Byte
// fields are copied out of the reader's buffer: decoded events outlive the
// frame or record they arrived in.
func DecodeEventBinary(r *wire.Reader) (Event, error) {
	var ev Event
	ev.Kind = model.Action(r.Uvarint())
	ev.Lamport = r.Uvarint()
	switch ev.Kind {
	case model.ActDo:
		ev.Object = model.ObjectID(r.String())
		ev.Op.Kind = model.OpKind(r.Uvarint())
		ev.Op.Arg = model.Value(r.String())
		ev.Op.Delta = r.Varint()
		flags := r.Uvarint()
		ev.Rval.OK = flags&rvalOK != 0
		ev.Rval.Count = r.Varint()
		if flags&rvalHasValues != 0 {
			n := r.Uvarint()
			if n > uint64(r.Remaining()) {
				return ev, fmt.Errorf("cluster: implausible rval value count %d", n)
			}
			ev.Rval.Values = make([]model.Value, 0, n)
			for i := uint64(0); i < n && r.Err() == nil; i++ {
				ev.Rval.Values = append(ev.Rval.Values, model.Value(r.String()))
			}
		}
		ev.Dot = r.Dot()
		if r.Uvarint() == 1 {
			n := r.Uvarint()
			if n > uint64(r.Remaining()) {
				return ev, fmt.Errorf("cluster: implausible frontier length %d", n)
			}
			ev.Frontier = make([]uint64, n)
			for i := range ev.Frontier {
				ev.Frontier[i] = r.Uvarint()
			}
		}
	case model.ActSend, model.ActReceive:
		ev.Origin = model.ReplicaID(r.Uvarint())
		ev.Seq = r.Uvarint()
		if r.Uvarint() == 1 {
			ev.Payload = append([]byte(nil), r.Bytes()...)
		}
	default:
		if err := r.Err(); err != nil {
			return ev, err
		}
		return ev, fmt.Errorf("cluster: unknown event kind %v", ev.Kind)
	}
	return ev, r.Err()
}

// appendHistory appends a history's binary encoding: identity, then the
// event count, then each event, then (trailing, v5) the shard identity —
// an old reader stops after the last event and sees the single-shard
// fields it knows about.
func appendHistory(w *wire.Writer, h History) error {
	w.Uvarint(uint64(h.Node))
	w.Uvarint(uint64(h.N))
	w.String(h.Store)
	w.Uvarint(uint64(len(h.Events)))
	for _, ev := range h.Events {
		if err := AppendEventBinary(w, ev); err != nil {
			return err
		}
	}
	w.Uvarint(uint64(h.Shard))
	w.Uvarint(uint64(h.Shards))
	return nil
}

// decodeHistory decodes one history encoded by appendHistory.
func decodeHistory(r *wire.Reader) (History, error) {
	var h History
	h.Node = model.ReplicaID(r.Uvarint())
	h.N = int(r.Uvarint())
	h.Store = r.String()
	n := r.Uvarint()
	if n > uint64(r.Remaining()) {
		return h, fmt.Errorf("cluster: implausible event count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		ev, err := DecodeEventBinary(r)
		if err != nil {
			return h, err
		}
		h.Events = append(h.Events, ev)
	}
	if r.Remaining() > 0 {
		h.Shard = int(r.Uvarint())
		h.Shards = int(r.Uvarint())
	}
	return h, r.Err()
}

// appendStats appends a stats snapshot's binary encoding, field by field in
// declaration order. The layout changes when Stats changes; that is safe
// because stats frames are negotiated per request and never persisted.
func appendStats(w *wire.Writer, s Stats) {
	w.Uvarint(uint64(s.Node))
	w.String(s.Store)
	w.String(s.Codec)
	w.Varint(s.Ops)
	w.Varint(s.Sends)
	w.Varint(s.Receives)
	w.Varint(s.Events)
	w.Varint(s.BytesOut)
	w.Varint(s.FramesOut)
	w.Varint(s.Retransmits)
	w.Varint(s.Reconnects)
	w.Varint(s.DupFrames)
	w.Varint(s.GapFrames)
	w.Varint(int64(s.Violations))
	q := uint64(0)
	if s.Quiesced {
		q = 1
	}
	w.Uvarint(q)
	// Membership fields trail the original layout so an older reader (which
	// stops at Quiesced) still decodes everything it knows about.
	w.Varint(int64(s.Members))
	w.Varint(s.SyncPulled)
	w.Varint(s.SyncServed)
	w.Varint(s.FailedLinks)
	// Shard fields trail the membership fields the same way (v5).
	w.Varint(int64(s.Shards))
	shardSlice := func(vs []int64) {
		w.Uvarint(uint64(len(vs)))
		for _, v := range vs {
			w.Varint(v)
		}
	}
	shardSlice(s.ShardOps)
	shardSlice(s.ShardSends)
	shardSlice(s.ShardReceives)
	shardSlice(s.ShardEvents)
}

// decodeStats decodes one stats snapshot encoded by appendStats.
func decodeStats(r *wire.Reader) (Stats, error) {
	var s Stats
	s.Node = model.ReplicaID(r.Uvarint())
	s.Store = r.String()
	s.Codec = r.String()
	s.Ops = r.Varint()
	s.Sends = r.Varint()
	s.Receives = r.Varint()
	s.Events = r.Varint()
	s.BytesOut = r.Varint()
	s.FramesOut = r.Varint()
	s.Retransmits = r.Varint()
	s.Reconnects = r.Varint()
	s.DupFrames = r.Varint()
	s.GapFrames = r.Varint()
	s.Violations = int(r.Varint())
	s.Quiesced = r.Uvarint() == 1
	if r.Remaining() > 0 {
		s.Members = int(r.Varint())
		s.SyncPulled = r.Varint()
		s.SyncServed = r.Varint()
	}
	if r.Remaining() > 0 {
		s.FailedLinks = r.Varint()
	}
	if r.Remaining() > 0 {
		s.Shards = int(r.Varint())
		shardSlice := func() ([]int64, error) {
			n := r.Uvarint()
			if n > uint64(r.Remaining()) {
				return nil, fmt.Errorf("cluster: implausible shard counter count %d", n)
			}
			if n == 0 {
				return nil, r.Err()
			}
			vs := make([]int64, n)
			for i := range vs {
				vs[i] = r.Varint()
			}
			return vs, r.Err()
		}
		var err error
		if s.ShardOps, err = shardSlice(); err != nil {
			return s, err
		}
		if s.ShardSends, err = shardSlice(); err != nil {
			return s, err
		}
		if s.ShardReceives, err = shardSlice(); err != nil {
			return s, err
		}
		if s.ShardEvents, err = shardSlice(); err != nil {
			return s, err
		}
	}
	return s, r.Err()
}
