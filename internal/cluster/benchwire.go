package cluster

import (
	"repro/internal/model"
	"repro/internal/wire"
)

// This file is the deterministic measurement surface behind cmd/loadgen
// -wirebench. The interesting numbers of the codec work — wire bytes per
// operation, frames per operation, allocations per operation — are pure
// functions of the encoded workload, so they are measured here on the
// encode paths alone, with no sockets or timers involved: the tracked
// BENCH_WIRE.json must be byte-identical across runs of the same flags and
// seed, which live TCP dynamics (retransmission timing, batching windows)
// can never promise. Throughput and latency stay wall-clock measurements in
// loadgen's live modes.

// BenchUpdates is a fixed sequence of synthetic updates for wire-path
// benchmarking: the same payloads pushed through both encode paths a
// replication link can take.
type BenchUpdates []protoUpdate

// NewBenchUpdates wraps broadcast payloads as origin-0 updates with
// consecutive sequence numbers, the shape a node's own broadcasts have on
// its links.
func NewBenchUpdates(payloads [][]byte) BenchUpdates {
	us := make(BenchUpdates, len(payloads))
	for i, p := range payloads {
		us[i] = protoUpdate{
			Origin: model.ReplicaID(0), Seq: uint64(i + 1),
			Lamport: uint64(i + 1), Payload: p,
		}
	}
	return us
}

// EncodeV1 runs the pre-negotiation fallback path: one tUpdate frame per
// update, a fresh writer and payload slice per frame — byte-for-byte what a
// JSON-codec connection writes, allocation-for-allocation what the code
// before writer pooling did. Returns total wire bytes (headers included)
// and frames.
func (us BenchUpdates) EncodeV1() (bytes, frames int64) {
	for _, u := range us {
		b := encodeUpdate(u)
		bytes += int64(len(b) + 4) // + frame header
		frames++
	}
	return bytes, frames
}

// EncodeBatched runs the negotiated binary path: tBatch frames of up to
// batch updates built in one pooled writer with the frame header patched in
// place — byte-for-byte what a binary connection writes after its hello
// ack, including the single-update tUpdate degenerate case.
func (us BenchUpdates) EncodeBatched(batch int) (bytes, frames int64) {
	if batch < 1 {
		batch = 1
	}
	enc := wire.GetWriter()
	defer wire.PutWriter(enc)
	for off := 0; off < len(us); {
		end := off + batch
		if end > len(us) {
			end = len(us)
		}
		enc.Reset()
		enc.BeginFrame()
		if end-off == 1 {
			appendUpdate(enc, us[off])
		} else {
			appendBatch(enc, us[off].Origin, us[off:end])
		}
		frame, err := enc.EndFrame(historyMaxFrame)
		if err != nil {
			return bytes, frames // unreachable for sane payloads
		}
		bytes += int64(len(frame))
		frames++
		off = end
	}
	return bytes, frames
}
