package cluster

import (
	"repro/internal/model"
	"repro/internal/wire"
)

// This file is the deterministic measurement surface behind cmd/loadgen
// -wirebench. The interesting numbers of the codec work — wire bytes per
// operation, frames per operation, allocations per operation — are pure
// functions of the encoded workload, so they are measured here on the
// encode paths alone, with no sockets or timers involved: the tracked
// BENCH_WIRE.json must be byte-identical across runs of the same flags and
// seed, which live TCP dynamics (retransmission timing, batching windows)
// can never promise. Throughput and latency stay wall-clock measurements in
// loadgen's live modes.

// BenchUpdates is a fixed sequence of synthetic updates for wire-path
// benchmarking: the same payloads pushed through both encode paths a
// replication link can take.
type BenchUpdates []protoUpdate

// NewBenchUpdates wraps broadcast payloads as origin-0 updates with
// consecutive sequence numbers, the shape a node's own broadcasts have on
// its links.
func NewBenchUpdates(payloads [][]byte) BenchUpdates {
	us := make(BenchUpdates, len(payloads))
	for i, p := range payloads {
		us[i] = protoUpdate{
			Origin: model.ReplicaID(0), Seq: uint64(i + 1),
			Lamport: uint64(i + 1), Payload: p,
		}
	}
	return us
}

// EncodeV1 runs the pre-negotiation fallback path: one tUpdate frame per
// update, a fresh writer and payload slice per frame — byte-for-byte what a
// JSON-codec connection writes, allocation-for-allocation what the code
// before writer pooling did. Returns total wire bytes (headers included)
// and frames.
func (us BenchUpdates) EncodeV1() (bytes, frames int64) {
	for _, u := range us {
		b := encodeUpdate(u)
		bytes += int64(len(b) + 4) // + frame header
		frames++
	}
	return bytes, frames
}

// EncodeBatched runs the negotiated binary path: tBatch frames of up to
// batch updates built in one pooled writer with the frame header patched in
// place — byte-for-byte what a binary connection writes after its hello
// ack, including the single-update tUpdate degenerate case.
func (us BenchUpdates) EncodeBatched(batch int) (bytes, frames int64) {
	if batch < 1 {
		batch = 1
	}
	enc := wire.GetWriter()
	defer wire.PutWriter(enc)
	for off := 0; off < len(us); {
		end := off + batch
		if end > len(us) {
			end = len(us)
		}
		enc.Reset()
		enc.BeginFrame()
		if end-off == 1 {
			appendUpdate(enc, us[off])
		} else {
			appendBatch(enc, us[off].Origin, us[off:end])
		}
		frame, err := enc.EndFrame(historyMaxFrame)
		if err != nil {
			return bytes, frames // unreachable for sane payloads
		}
		bytes += int64(len(frame))
		frames++
		off = end
	}
	return bytes, frames
}

// EncodeRange runs the anti-entropy donor path: tRangeResp chunks of up to
// chunkMax updates under serveRange's exact chunking rule, optionally
// behind the tCompressed envelope a v4 connection negotiates (compress
// follows maybeCompressPayload's gates, so sub-floor or incompressible
// chunks ship raw there too). Returns total wire bytes (headers included)
// and frames.
func (us BenchUpdates) EncodeRange(chunkMax, maxFrame int, compress bool) (bytes, frames int64) {
	if chunkMax < 1 {
		chunkMax = 1
	}
	if maxFrame <= 0 {
		maxFrame = wire.DefaultMaxFrame
	}
	comp := wire.CompNone
	if compress {
		comp = wire.CompFlate
	}
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	for idx := 0; idx < len(us); {
		size := 0
		end := idx
		for i := idx; i < len(us); i++ {
			cost := len(us[i].Payload) + 32
			if end > idx && (end-idx >= chunkMax || size+cost > maxFrame-64) {
				break
			}
			size += cost
			end++
		}
		w.Reset()
		appendRangeResp(w, 0, us[idx:end])
		if env := maybeCompressPayload(w.Bytes(), comp); env != nil {
			bytes += int64(env.Len() + 4)
			wire.PutWriter(env)
		} else {
			bytes += int64(w.Len() + 4)
		}
		frames++
		idx = end
	}
	return bytes, frames
}

// EncodeHistoryFrame measures one binary history reply (tHistoryRespB)
// holding the given events, optionally behind the compression envelope —
// the client-download path's bulk frame. Returns the frame's wire length,
// header included.
func EncodeHistoryFrame(events []Event, compress bool) (int64, error) {
	comp := wire.CompNone
	if compress {
		comp = wire.CompFlate
	}
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	w.Uvarint(tHistoryRespB)
	if err := appendHistory(w, History{Node: 0, N: 1, Store: "bench", Events: events}); err != nil {
		return 0, err
	}
	if env := maybeCompressPayload(w.Bytes(), comp); env != nil {
		defer wire.PutWriter(env)
		return int64(env.Len() + 4), nil
	}
	return int64(w.Len() + 4), nil
}
