package cluster

import (
	"fmt"
	"net"

	"repro/internal/wire"
)

// Per-frame compression for large transfers (DESIGN.md §5.13). A frame
// whose payload clears the size floor on a connection that negotiated
// wire.CompFlate travels wrapped in a tCompressed envelope:
//
//	tCompressed algo rawLen deflate-bytes
//
// The envelope is self-describing, so only the WRITE side is gated on the
// negotiated algorithm — every read path unwraps unconditionally via
// recvFrame/decompressFrame. That keeps the upgrade staged exactly like
// codec negotiation: a sender never compresses until the peer's hello
// ack (or join ack) proves the other end is v4+, and a pre-v4 reader
// never receives an envelope because it never advertised one.

// tCompressed is the compression envelope frame type. It continues the
// numbering after proto_member.go's tRangeResp (23) and can wrap any other
// frame type; only tBatch, tRangeResp, and tHistoryRespB are wrapped in
// practice (the floor-clearing bulk-transfer frames).
const tCompressed = 24

// compressFloor is the smallest frame payload worth compressing. Below it
// the DEFLATE block overhead and the envelope header eat the savings, and
// the latency-sensitive small frames (acks, hellos, single updates) skip
// the compressor entirely.
const compressFloor = 512

// negotiateComp picks the connection's compression algorithm from the two
// ends' preferences: minimum wins, mirroring negotiateCodec, so either
// side can force CompNone and an unknown (newer) ID degrades to none.
func negotiateComp(a, b uint64) uint64 {
	chosen := a
	if b < chosen {
		chosen = b
	}
	if chosen != wire.CompFlate {
		return wire.CompNone
	}
	return chosen
}

// maybeCompressPayload wraps a frame payload in a tCompressed envelope
// when the negotiated algorithm, the size floor, and an actual size win
// all agree; it returns a pooled writer holding the envelope — the caller
// must PutWriter it after sending — or nil to send the payload raw. An
// incompressible payload (the envelope would be no smaller) ships raw, so
// compression never costs wire bytes.
func maybeCompressPayload(payload []byte, comp uint64) *wire.Writer {
	if comp != wire.CompFlate || len(payload) < compressFloor {
		return nil
	}
	w := wire.GetWriter()
	w.Uvarint(tCompressed)
	w.Uvarint(comp)
	w.Uvarint(uint64(len(payload)))
	wire.DeflateTo(w, payload)
	if w.Len() >= len(payload) {
		wire.PutWriter(w)
		return nil
	}
	return w
}

// decompressFrame unwraps a tCompressed envelope; any other frame passes
// through untouched. The declared inflated size obeys the same frame
// limit as the connection's raw frames, so compression cannot smuggle an
// oversized frame past ReadFrame's guard.
func decompressFrame(b []byte, maxFrame int) ([]byte, error) {
	r := wire.NewReader(b)
	if typ := r.Uvarint(); r.Err() != nil || typ != tCompressed {
		return b, nil
	}
	algo := r.Uvarint()
	rawLen := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if algo != wire.CompFlate {
		return nil, fmt.Errorf("cluster: unknown compression algorithm %d in envelope", algo)
	}
	if maxFrame <= 0 {
		maxFrame = wire.DefaultMaxFrame
	}
	if rawLen > uint64(maxFrame) {
		return nil, &wire.FrameSizeError{Size: int(rawLen), Max: maxFrame}
	}
	return wire.Inflate(r.Fixed(r.Remaining()), int(rawLen))
}

// recvFrame reads one length-prefixed frame and transparently unwraps the
// compression envelope. This is the read-path replacement for
// wire.ReadFrame everywhere a connection might carry compressed frames.
func recvFrame(conn net.Conn, maxFrame int) ([]byte, error) {
	b, err := wire.ReadFrame(conn, maxFrame)
	if err != nil {
		return nil, err
	}
	return decompressFrame(b, maxFrame)
}

// writeFrameComp is Node.writeFrame behind the compression gate: payloads
// over the floor on a flate-negotiated connection travel as tCompressed
// envelopes, everything else goes raw.
func (n *Node) writeFrameComp(conn net.Conn, payload []byte, maxFrame int, comp uint64) bool {
	if env := maybeCompressPayload(payload, comp); env != nil {
		ok := n.writeFrame(conn, env.Bytes(), maxFrame)
		wire.PutWriter(env)
		return ok
	}
	return n.writeFrame(conn, payload, maxFrame)
}

// sendFrameComp is Node.sendFrame behind the same gate.
func (n *Node) sendFrameComp(conn net.Conn, comp uint64, build func(*wire.Writer)) bool {
	w := wire.GetWriter()
	build(w)
	ok := n.writeFrameComp(conn, w.Bytes(), n.cfg.MaxFrame, comp)
	wire.PutWriter(w)
	return ok
}
