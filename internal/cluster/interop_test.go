package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
)

// TestMixedCodecClusterConverges is the negotiation acceptance test: a
// 3-node causal cluster where node 1 is pinned to the JSON codec (standing
// in for an old binary running the v1 wire format preference) while the
// others prefer binary. Every link must settle on a codec both ends speak,
// the cluster must converge, and the merged histories must audit clean —
// mixed-codec deployments are exactly the rolling-upgrade state the
// negotiation exists for.
func TestMixedCodecClusterConverges(t *testing.T) {
	const n = 3
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		st, err := store.Open("causal", spec.MVRTypes(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig(model.ReplicaID(i), n, st)
		if i == 1 {
			cfg.Codec = "json"
		}
		nd, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	for i, nd := range nodes {
		peers := make(map[model.ReplicaID]string)
		for j, other := range nodes {
			if j != i {
				peers[model.ReplicaID(j)] = other.Addr()
			}
		}
		if err := nd.Connect(peers); err != nil {
			t.Fatal(err)
		}
	}

	for i, want := range []string{"binary", "json", "binary"} {
		if got := nodes[i].Stats().Codec; got != want {
			t.Fatalf("node %d codec = %q, want %q", i, got, want)
		}
	}

	objects := []model.ObjectID{"x", "y"}
	for i := 0; i < 60; i++ {
		nd := nodes[i%n]
		v := model.Value(fmt.Sprintf("n%d.%d", i%n, i))
		if _, err := nd.Do(objects[i%len(objects)], model.Write(v)); err != nil {
			t.Fatal(err)
		}
	}
	if !WaitQuiesced(nodes, 30*time.Second) {
		for _, nd := range nodes {
			t.Logf("r%d stats: %+v", nd.ID(), nd.Stats())
		}
		t.Fatal("mixed-codec cluster did not quiesce")
	}

	doers := make([]Doer, n)
	for i, nd := range nodes {
		doers[i] = nd
	}
	if err := CheckConverged(doers, objects); err != nil {
		t.Fatal(err)
	}
	hists := make([]History, n)
	for i, nd := range nodes {
		hists[i] = nd.History()
		if v := nd.Violations(); len(v) != 0 {
			t.Fatalf("r%d property violations: %v", nd.ID(), v)
		}
	}
	audit, err := BuildAudit(hists)
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Exec.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	if err := consistency.CheckCausal(audit.Abstract, spec.MVRTypes()); err != nil {
		t.Fatal(err)
	}
}

// TestBatchingCoalescesFrames checks that the negotiated binary path
// actually batches and that the JSON fallback never does. The backlog is
// built deterministically: the 0→1 link is cut, 200 writes pile up in the
// sender queue, then the link heals and the reconnect drains the queue —
// the sender waits for the hello ack before a deep-backlog drain, so the
// whole queue ships in the sealed codec, not in a racy v1 prefix.
func TestBatchingCoalescesFrames(t *testing.T) {
	const writes = 200
	run := func(t *testing.T, peerCodec string) (sends, frames int64) {
		t.Helper()
		nets := fault.NewNetem(2)
		nodes := make([]*Node, 2)
		for i := 0; i < 2; i++ {
			st, err := store.Open("lww", spec.MVRTypes(), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cfg := fastConfig(model.ReplicaID(i), 2, st)
			cfg.Faults = nets
			if i == 1 {
				cfg.Codec = peerCodec
			}
			nd, err := NewNode(cfg)
			if err != nil {
				t.Fatal(err)
			}
			nodes[i] = nd
		}
		t.Cleanup(func() {
			for _, nd := range nodes {
				nd.Close()
			}
		})
		if err := nodes[0].Connect(map[model.ReplicaID]string{1: nodes[1].Addr()}); err != nil {
			t.Fatal(err)
		}
		if err := nodes[1].Connect(map[model.ReplicaID]string{0: nodes[0].Addr()}); err != nil {
			t.Fatal(err)
		}

		// One seeded write proves the link up, then cut the update
		// direction and pile up the backlog while the sender can't ship.
		if _, err := nodes[0].Do("x", model.Write("seed")); err != nil {
			t.Fatal(err)
		}
		if !WaitQuiesced(nodes, 30*time.Second) {
			t.Fatal("cluster did not quiesce after seed write")
		}
		before := nodes[0].Stats().FramesOut
		nets.Apply(fault.Directive{Kind: fault.KindLinkCut, From: 0, To: 1}, time.Millisecond)
		for i := 0; i < writes; i++ {
			v := model.Value(fmt.Sprintf("v%d", i))
			if _, err := nodes[0].Do("x", model.Write(v)); err != nil {
				t.Fatal(err)
			}
		}
		nets.Apply(fault.Directive{Kind: fault.KindLinkRestore, From: 0, To: 1}, time.Millisecond)
		if !WaitQuiesced(nodes, 30*time.Second) {
			t.Fatal("cluster did not quiesce after drain")
		}
		return nodes[0].Stats().Sends, nodes[0].Stats().FramesOut - before
	}

	sends, frames := run(t, "") // both ends prefer binary
	if sends <= writes {
		t.Fatalf("sends = %d, want > %d", sends, writes)
	}
	// 200 queued updates fit in 4 full batches; the reconnect hello and
	// retransmit-timer slack add a few frames. A quarter of the update
	// count still proves coalescing.
	if frames >= writes/4 {
		t.Fatalf("binary link: %d frames for %d backlogged sends — batching is not coalescing", frames, writes)
	}

	_, frames = run(t, "json")
	// On the JSON fallback every update is its own frame: the drain takes
	// at least one frame per backlogged update.
	if frames < writes {
		t.Fatalf("json link: %d frames for %d backlogged sends — fallback must not send fewer frames than updates", frames, writes)
	}
}
