package cluster

import (
	"errors"
	"testing"

	"repro/internal/model"
)

// TestMergeHistoriesRejectsDuplicateSend pins the duplicate-broadcast
// defense: message identity is (Origin, Seq), so two send events minting the
// same pair (e.g. a restarted node re-recording a re-offered broadcast)
// would silently attribute every receive to whichever send merged last.
// Both MergeHistories and BuildAudit must reject with the typed *OrderError.
func TestMergeHistoriesRejectsDuplicateSend(t *testing.T) {
	h := History{Node: 0, N: 2, Events: []Event{
		{Kind: model.ActSend, Lamport: 1, Origin: 0, Seq: 1, Payload: []byte("m")},
		{Kind: model.ActSend, Lamport: 3, Origin: 0, Seq: 1, Payload: []byte("m'")},
	}}
	_, err := MergeHistories([]History{h})
	var oe *OrderError
	if !errors.As(err, &oe) {
		t.Fatalf("MergeHistories = %v, want *OrderError", err)
	}
	if !oe.DuplicateSend || oe.Origin != 0 || oe.Seq != 1 {
		t.Fatalf("OrderError = %+v, want DuplicateSend for (r0,1)", oe)
	}
	if _, err := BuildAudit([]History{h}); !errors.As(err, &oe) || !oe.DuplicateSend {
		t.Fatalf("BuildAudit = %v, want the same DuplicateSend *OrderError", err)
	}

	// The duplicate may also hide across histories: a peer's re-recorded
	// send of a forwarded broadcast collides with the origin's.
	a := History{Node: 0, N: 2, Events: []Event{
		{Kind: model.ActSend, Lamport: 1, Origin: 0, Seq: 1, Payload: []byte("m")},
	}}
	b := History{Node: 1, N: 2, Events: []Event{
		{Kind: model.ActSend, Lamport: 2, Origin: 0, Seq: 1, Payload: []byte("m")},
	}}
	if _, err := MergeHistories([]History{a, b}); !errors.As(err, &oe) || !oe.DuplicateSend {
		t.Fatalf("cross-history duplicate send = %v, want DuplicateSend *OrderError", err)
	}
}

// TestBuildAuditFrontierlessReads pins the containment-edge guard: a store
// without visibility reporting records no frontier, and the empty frontier
// must not be treated as "contained in everything" — that absence-derived
// edge could connect a violating read into the visibility order well enough
// to mask the violation.
func TestBuildAuditFrontierlessReads(t *testing.T) {
	h0 := History{Node: 0, N: 2, Store: "lww", Events: []Event{
		{Kind: model.ActDo, Lamport: 1, Object: "x", Op: model.Read(), Rval: model.ReadResponse(nil)},
	}}
	h1 := History{Node: 1, N: 2, Store: "lww", Events: []Event{
		{Kind: model.ActDo, Lamport: 2, Object: "x", Op: model.Read(), Rval: model.ReadResponse(nil)},
	}}
	audit, err := BuildAudit([]History{h0, h1})
	if err != nil {
		t.Fatal(err)
	}
	if audit.Abstract.Vis(0, 1) {
		t.Fatal("containment edge derived from two absent frontiers")
	}

	// With real frontiers the same shape does yield the edge: r0's view
	// ([1,0]) is contained in r1's ([1,1]).
	h0.Events[0].Frontier = []uint64{1, 0}
	h1.Events[0].Frontier = []uint64{1, 1}
	audit, err = BuildAudit([]History{h0, h1})
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Abstract.Vis(0, 1) {
		t.Fatal("containment edge missing when both frontiers are reported")
	}

	// Mixed: a reported frontier against an absent one still yields no
	// edge — containment cannot be claimed against a view never stated.
	h1.Events[0].Frontier = nil
	audit, err = BuildAudit([]History{h0, h1})
	if err != nil {
		t.Fatal(err)
	}
	if audit.Abstract.Vis(0, 1) {
		t.Fatal("containment edge derived against an absent frontier")
	}
}
