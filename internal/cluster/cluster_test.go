package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"

	_ "repro/internal/store/causal"
	_ "repro/internal/store/lww"
	_ "repro/internal/store/statesync"
)

// fastConfig keeps test runs snappy: aggressive retransmission and dial
// backoff so injected connection resets heal in milliseconds.
func fastConfig(id model.ReplicaID, n int, st store.Store) Config {
	return Config{
		ID: id, N: n, Store: st, Listen: "127.0.0.1:0",
		DialTimeout:    time.Second,
		DialBackoffMin: 5 * time.Millisecond,
		DialBackoffMax: 100 * time.Millisecond,
		RetransmitMin:  25 * time.Millisecond,
		RetransmitMax:  250 * time.Millisecond,
	}
}

// startCluster boots n nodes of the named store on loopback and wires the
// full mesh once every listener is up.
func startCluster(t *testing.T, storeName string, n int) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		st, err := store.Open(storeName, spec.MVRTypes(), store.Options{})
		if err != nil {
			t.Fatalf("open %q: %v", storeName, err)
		}
		nd, err := NewNode(fastConfig(model.ReplicaID(i), n, st))
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = nd
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	for i, nd := range nodes {
		peers := make(map[model.ReplicaID]string)
		for j, other := range nodes {
			if j != i {
				peers[model.ReplicaID(j)] = other.Addr()
			}
		}
		if err := nd.Connect(peers); err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
	}
	return nodes
}

// TestThreeNodeAuditUnderConnectionResets is the package's end-to-end
// check: a 3-node causal cluster takes a concurrent workload while a chaos
// goroutine repeatedly resets the replication connections, then quiesces.
// The recorded histories must merge into a well-formed execution whose
// derived abstract execution is causally consistent, with zero §4 property
// violations — and the cluster must have actually converged and actually
// reconnected (the run exercised the recovery path, not a quiet network).
func TestThreeNodeAuditUnderConnectionResets(t *testing.T) {
	nodes := startCluster(t, "causal", 3)
	objects := []model.ObjectID{"x", "y", "z"}

	const workers = 6
	const opsPerWorker = 80
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			nd := nodes[w%len(nodes)]
			for i := 0; i < opsPerWorker; i++ {
				obj := objects[rng.Intn(len(objects))]
				if rng.Intn(3) == 0 {
					if _, err := nd.Do(obj, model.Read()); err != nil {
						t.Errorf("worker %d read: %v", w, err)
						return
					}
				} else {
					v := model.Value(fmt.Sprintf("w%d.%d", w, i))
					if _, err := nd.Do(obj, model.Write(v)); err != nil {
						t.Errorf("worker %d write: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	// Chaos: reset the dial-side replication connections of every node,
	// several times, while the workload runs.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for round := 0; round < 8; round++ {
			time.Sleep(15 * time.Millisecond)
			for _, nd := range nodes {
				nd.BreakConnections()
			}
		}
	}()
	wg.Wait()
	<-chaosDone
	if t.Failed() {
		return
	}

	if !WaitQuiesced(nodes, 30*time.Second) {
		for _, nd := range nodes {
			t.Logf("r%d stats: %+v", nd.ID(), nd.Stats())
		}
		t.Fatal("cluster did not quiesce")
	}

	var reconnects int64
	for _, nd := range nodes {
		reconnects += nd.Stats().Reconnects
	}
	if reconnects == 0 {
		t.Fatal("chaos injected no reconnects — recovery path untested")
	}

	doers := make([]Doer, len(nodes))
	for i, nd := range nodes {
		doers[i] = nd
	}
	if err := CheckConverged(doers, objects); err != nil {
		t.Fatal(err)
	}

	hists := make([]History, len(nodes))
	for i, nd := range nodes {
		hists[i] = nd.History()
		if v := nd.Violations(); len(v) != 0 {
			t.Fatalf("r%d property violations: %v", nd.ID(), v)
		}
	}
	audit, err := BuildAudit(hists)
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Exec.CheckWellFormed(); err != nil {
		t.Fatalf("merged execution not well-formed: %v", err)
	}
	if err := consistency.CheckCausal(audit.Abstract, spec.MVRTypes()); err != nil {
		t.Fatalf("derived abstract execution not causal: %v", err)
	}
}

// TestClientRequestResponse drives a 2-node cluster purely over the wire:
// operations, stats, and the history download all through Client.
func TestClientRequestResponse(t *testing.T) {
	nodes := startCluster(t, "lww", 2)
	c0, err := Dial(nodes[0].Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(nodes[1].Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	if resp, err := c0.Do("k", model.Write("v1")); err != nil || !resp.OK {
		t.Fatalf("write: resp=%v err=%v", resp, err)
	}
	if resp, err := c0.Do("k", model.Read()); err != nil || len(resp.Values) != 1 || resp.Values[0] != "v1" {
		t.Fatalf("read-own-write: resp=%v err=%v", resp, err)
	}

	// The write must propagate to the other node.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := c1.Do("k", model.Read())
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Values) == 1 && resp.Values[0] == "v1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("write never reached node 1: last read %v", resp)
		}
		time.Sleep(5 * time.Millisecond)
	}

	s, err := c0.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Node != 0 || s.Store != "lww" || s.Ops < 2 || s.Sends < 1 {
		t.Fatalf("stats = %+v", s)
	}
	h, err := c1.History()
	if err != nil {
		t.Fatal(err)
	}
	if h.Node != 1 || h.N != 2 || len(h.Events) == 0 {
		t.Fatalf("history = %+v", h)
	}

	// Both histories together must form a well-formed execution.
	h0, err := c0.History()
	if err != nil {
		t.Fatal(err)
	}
	audit, err := BuildAudit([]History{h0, h})
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Exec.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
}

// TestStateSyncClusterConverges runs the state-based store over TCP: the
// transport's reliability plus state merging converge without the
// simulator's lossy-run caveat.
func TestStateSyncClusterConverges(t *testing.T) {
	nodes := startCluster(t, "statesync", 3)
	for i, nd := range nodes {
		for j := 0; j < 5; j++ {
			if _, err := nd.Do("obj", model.Write(model.Value(fmt.Sprintf("n%d.%d", i, j)))); err != nil {
				t.Fatal(err)
			}
		}
	}
	nodes[rand.Intn(len(nodes))].BreakConnections()
	if !WaitQuiesced(nodes, 30*time.Second) {
		t.Fatal("statesync cluster did not quiesce")
	}
	doers := make([]Doer, len(nodes))
	for i, nd := range nodes {
		doers[i] = nd
	}
	if err := CheckConverged(doers, []model.ObjectID{"obj"}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeHistoriesRejectsCorrupt pins the audit pipeline's defenses: a
// duplicated node and a receive without a matching send both fail loudly
// instead of producing a bogus execution.
func TestMergeHistoriesRejectsCorrupt(t *testing.T) {
	h := History{Node: 0, N: 2, Events: []Event{
		{Kind: model.ActSend, Lamport: 1, Origin: 0, Seq: 1, Payload: []byte("m")},
	}}
	if _, err := MergeHistories([]History{h, h}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	orphan := History{Node: 1, N: 2, Events: []Event{
		{Kind: model.ActReceive, Lamport: 5, Origin: 0, Seq: 9},
	}}
	if _, err := MergeHistories([]History{h, orphan}); err == nil {
		t.Fatal("orphan receive accepted")
	}
	ok := History{Node: 1, N: 2, Events: []Event{
		{Kind: model.ActReceive, Lamport: 2, Origin: 0, Seq: 1},
	}}
	x, err := MergeHistories([]History{h, ok})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
}
