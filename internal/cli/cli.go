// Package cli is the shared command-line surface of the cmd/ binaries: one
// place defining the normalized flag set (-store, -seed, -parallel, -json)
// and the registry-backed store opener, replacing the per-binary ad-hoc
// flag names and duplicated store switch statements.
//
// Importing cli also populates the store registry (the blank imports
// below), so every binary that parses a -store flag can open every store.
package cli

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"strings"

	"repro/internal/bench"
	"repro/internal/spec"
	"repro/internal/store"

	// Registered stores: importing them for effect is what makes the
	// registry the single store list of the repository.
	_ "repro/internal/store/causal"
	_ "repro/internal/store/gsp"
	_ "repro/internal/store/kbuffer"
	_ "repro/internal/store/lww"
	_ "repro/internal/store/statesync"
)

// StoreFlag registers the normalized -store flag, listing the registered
// store names in its usage string.
func StoreFlag(fs *flag.FlagSet, def string) *string {
	return fs.String("store", def, "store to run: "+strings.Join(store.Names(), ", "))
}

// SeedFlag registers the normalized -seed flag: the single root seed from
// which all randomness (including per-worker RNG streams of parallel runs)
// is derived.
func SeedFlag(fs *flag.FlagSet, def int64) *int64 {
	return fs.Int64("seed", def, "root seed; parallel workers derive split sub-seeds from it")
}

// ParallelFlag registers the normalized -parallel flag, defaulting to
// GOMAXPROCS. Commands pass its value to the parallel exploration and
// sweep engines; output is byte-identical for every worker count.
func ParallelFlag(fs *flag.FlagSet) *int {
	return fs.Int("parallel", runtime.GOMAXPROCS(0), "worker count for parallel exploration/sweeps (output is identical for any value)")
}

// JSONFlag registers the normalized -json flag selecting JSON Lines output.
func JSONFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("json", false, "emit machine-readable JSON Lines instead of aligned tables")
}

// OpenStore instantiates a registered store by name.
func OpenStore(name string, types spec.Types, opts store.Options) (store.Store, error) {
	return store.Open(name, types, opts)
}

// MustStore instantiates a registered store by name and panics on an
// unknown name — for the fixed store lists of experiment drivers, where an
// unknown name is a programmer error.
func MustStore(name string, types spec.Types, opts store.Options) store.Store {
	st, err := store.Open(name, types, opts)
	if err != nil {
		panic(fmt.Sprintf("cli: %v", err))
	}
	return st
}

// Output wraps a writer and the -json choice as a bench.Output sink.
func Output(w io.Writer, json bool) bench.Output {
	return bench.Output{W: w, JSON: json}
}
