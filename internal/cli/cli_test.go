package cli

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/spec"
	"repro/internal/store"
)

func TestFlagsRegisterNormalizedNames(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	storeName := StoreFlag(fs, "causal")
	seed := SeedFlag(fs, 1)
	parallel := ParallelFlag(fs)
	jsonOut := JSONFlag(fs)
	if err := fs.Parse([]string{"-store", "lww", "-seed", "9", "-parallel", "4", "-json"}); err != nil {
		t.Fatal(err)
	}
	if *storeName != "lww" || *seed != 9 || *parallel != 4 || !*jsonOut {
		t.Fatalf("parsed values wrong: %s %d %d %v", *storeName, *seed, *parallel, *jsonOut)
	}
	if !strings.Contains(fs.Lookup("store").Usage, "kbuffer") {
		t.Fatal("-store usage should list the registered stores")
	}
}

func TestOpenStoreUsesRegistry(t *testing.T) {
	st, err := OpenStore("kbuffer", spec.MVRTypes(), store.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != "kbuffer-3" && !strings.Contains(st.Name(), "kbuffer") {
		t.Fatalf("unexpected store: %s", st.Name())
	}
	if _, err := OpenStore("nope", spec.MVRTypes(), store.Options{}); err == nil {
		t.Fatal("expected unknown-store error")
	}
}

func TestMustStorePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustStore should panic on an unknown name")
		}
	}()
	MustStore("nope", spec.MVRTypes(), store.Options{})
}

func TestOutputRoutesJSON(t *testing.T) {
	var sb strings.Builder
	out := Output(&sb, true)
	if !out.JSON || out.W != &sb {
		t.Fatal("Output should carry the writer and format choice")
	}
}
