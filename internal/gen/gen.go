// Package gen produces abstract executions for the theorem experiments:
// seeded random causally consistent executions (via an abstract-level gossip
// simulation whose visibility sets are downward closed by construction),
// revealing executions (§5.2.1 — each write is immediately preceded by a
// read with identical visibility), and the crafted "witnessed concurrency"
// family that is observably causally consistent with genuinely exposed
// concurrency (the generalized Figure 3c pattern).
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/abstract"
	"repro/internal/model"
	"repro/internal/spec"
)

// Config parameterizes the random causal generator.
type Config struct {
	// Replicas is the number of client sessions (default 3).
	Replicas int
	// Objects is the object pool (default x0..x2, all MVRs).
	Objects []model.ObjectID
	// Events is the number of generated do events, counting the inserted
	// revealing reads (default 20).
	Events int
	// WriteRatio is the fraction of generated operations that are writes
	// (default 0.5).
	WriteRatio float64
	// GossipProb is the per-event probability that the acting session first
	// merges another session's visibility set (default 0.4).
	GossipProb float64
	// Revealing inserts a same-object read with identical visibility
	// immediately before every write (§5.2.1).
	Revealing bool
	// Seed seeds the generator.
	Seed int64
}

func (cfg *Config) defaults() {
	if cfg.Replicas == 0 {
		cfg.Replicas = 3
	}
	if len(cfg.Objects) == 0 {
		cfg.Objects = []model.ObjectID{"x0", "x1", "x2"}
	}
	if cfg.Events == 0 {
		cfg.Events = 20
	}
	if cfg.WriteRatio == 0 {
		cfg.WriteRatio = 0.5
	}
	if cfg.GossipProb == 0 {
		cfg.GossipProb = 0.4
	}
}

// builder assembles an abstract execution with per-session visibility sets
// (downward closed, so visibility is transitive and the result causally
// consistent by construction) and specification-determined responses (so the
// result is correct by construction).
type builder struct {
	a     *abstract.Execution
	types spec.Types
	seen  [][]bool // seen[r][i]: session r has event i in its visibility set
	next  int      // unique-value counter
}

func newBuilder(replicas int, types spec.Types) *builder {
	return &builder{a: abstract.New(), types: types, seen: make([][]bool, replicas)}
}

// gossip merges session from's visibility set into session r's.
func (b *builder) gossip(r, from model.ReplicaID) {
	b.grow()
	for i, s := range b.seen[from] {
		if s {
			b.seen[r][i] = true
		}
	}
}

func (b *builder) grow() {
	n := b.a.Len()
	for r := range b.seen {
		for len(b.seen[r]) < n {
			b.seen[r] = append(b.seen[r], false)
		}
	}
}

// emit appends an event at session r with the session's current visibility
// set, assigns the specification response, and adds the event to the
// session's set.
func (b *builder) emit(r model.ReplicaID, obj model.ObjectID, op model.Operation) int {
	b.grow()
	j := b.a.Append(model.Event{Replica: r, Act: model.ActDo, Object: obj, Op: op})
	for i, s := range b.seen[r] {
		if s {
			b.a.AddVis(i, j)
		}
	}
	b.a.SetRval(j, spec.Specified(b.a, b.types, j))
	b.grow()
	b.seen[r][j] = true
	return j
}

// write emits a write of a fresh unique value, optionally preceded by the
// revealing read (same visibility: the read is emitted first from the same
// seen set, then joins it, so every later event sees both together).
func (b *builder) write(r model.ReplicaID, obj model.ObjectID, revealing bool) int {
	if revealing {
		b.emit(r, obj, model.Read())
	}
	b.next++
	return b.emit(r, obj, model.Write(model.Value(fmt.Sprintf("v%d", b.next))))
}

// RandomCausal generates a random causally consistent, correct abstract
// execution over MVR objects. With cfg.Revealing it is also revealing.
func RandomCausal(cfg Config) *abstract.Execution {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	types := spec.MVRTypes()
	b := newBuilder(cfg.Replicas, types)
	for b.a.Len() < cfg.Events {
		r := model.ReplicaID(rng.Intn(cfg.Replicas))
		if rng.Float64() < cfg.GossipProb {
			from := model.ReplicaID(rng.Intn(cfg.Replicas))
			b.gossip(r, from)
		}
		obj := cfg.Objects[rng.Intn(len(cfg.Objects))]
		if rng.Float64() < cfg.WriteRatio {
			b.write(r, obj, cfg.Revealing)
		} else {
			b.emit(r, obj, model.Read())
		}
	}
	return b.a
}

// WitnessedConcurrency generates the generalized Figure 3c pattern: in each
// round, two sessions first write witness objects (y0 by session 1, y1 by
// session 0), then concurrently write the shared MVR x; a third session then
// merges both sessions' knowledge and reads x, observing both concurrent
// writes. The witness writes supply exactly the Definition 18 evidence, so
// the execution is observably causally consistent while genuinely exposing
// concurrency. The result is revealing if revealing is set.
func WitnessedConcurrency(rounds int, revealing bool) *abstract.Execution {
	types := spec.MVRTypes()
	b := newBuilder(3, types)
	const (
		x  = model.ObjectID("x")
		y0 = model.ObjectID("y0")
		y1 = model.ObjectID("y1")
	)
	for round := 0; round < rounds; round++ {
		//

		// Witness writes: w'_1 at session 0 (object y1), w'_0 at session 1
		// (object y0). Session order will make them visible to the sessions'
		// own x-writes but the partitioned rounds keep them invisible to the
		// peer's x-write.
		b.write(0, y1, revealing)
		b.write(1, y0, revealing)
		// Concurrent x-writes.
		b.write(0, x, revealing)
		b.write(1, x, revealing)
		// The observer merges both sessions and reads {w0, w1}.
		b.gossip(2, 0)
		b.gossip(2, 1)
		b.emit(2, x, model.Read())
		// Sessions 0 and 1 then learn everything via the observer, so the
		// next round's writes causally follow this round.
		b.gossip(0, 2)
		b.gossip(1, 2)
	}
	return b.a
}

// MakeRevealing transforms an arbitrary MVR abstract execution into the
// revealing form of §5.2.1: before every write w it inserts a read r_w of
// the same object whose visibility set is identical to w's (minus w itself),
// with r_w visible to w (session order) and to exactly the events that see
// w. Existing events, edges, and responses are preserved.
func MakeRevealing(a *abstract.Execution, types spec.Types) *abstract.Execution {
	out := abstract.New()
	// mapping[i] = index of original event i in the output.
	mapping := make([]int, a.Len())
	// readOf[i] = index of the inserted r_w for original write i, or -1.
	readOf := make([]int, a.Len())
	for i := range readOf {
		readOf[i] = -1
	}
	addEdges := func(j, outJ int, includeReads bool) {
		for _, i := range a.VisPreds(j) {
			out.AddVis(mapping[i], outJ)
			if includeReads && readOf[i] >= 0 {
				out.AddVis(readOf[i], outJ)
			}
		}
	}
	for j, e := range a.H {
		if e.IsWrite() {
			rw := out.Append(model.Event{Replica: e.Replica, Act: model.ActDo, Object: e.Object, Op: model.Read()})
			addEdges(j, rw, true)
			out.SetRval(rw, spec.Specified(out, types, rw))
			readOf[j] = rw
		}
		outJ := out.Append(e)
		mapping[j] = outJ
		addEdges(j, outJ, true)
		if readOf[j] >= 0 {
			out.AddVis(readOf[j], outJ)
		}
	}
	return out
}
