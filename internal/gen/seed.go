package gen

// SplitSeed derives the stream-th sub-seed of a root seed, so a parallel
// run can hand every worker (or every generated execution) its own
// decorrelated RNG stream while staying reproducible from the one root
// seed: results depend only on (root, stream), never on which OS thread or
// goroutine evaluated the stream.
//
// The mixer is splitmix64 (Steele, Lea & Flood, OOPSLA'14), the standard
// seed-expansion finalizer: consecutive streams map to well-separated
// points of the 2^64 state space, avoiding the correlated low bits that
// naive root+stream seeding feeds to math/rand.
func SplitSeed(root int64, stream int) int64 {
	z := uint64(root) + 0x9E3779B97F4A7C15*uint64(int64(stream)+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
