package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/consistency"
	"repro/internal/model"
	"repro/internal/spec"
)

func TestRandomCausalIsCausal(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		a := RandomCausal(Config{Seed: seed, Events: 30})
		if err := consistency.CheckCausal(a, spec.MVRTypes()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomCausalDeterministicPerSeed(t *testing.T) {
	a := RandomCausal(Config{Seed: 3, Events: 20})
	b := RandomCausal(Config{Seed: 3, Events: 20})
	if !a.Equivalent(b) {
		t.Fatal("same seed produced different executions")
	}
	c := RandomCausal(Config{Seed: 4, Events: 20})
	if a.Equivalent(c) {
		t.Fatal("different seeds produced identical executions (suspicious)")
	}
}

func TestRandomCausalRespectsEventCount(t *testing.T) {
	a := RandomCausal(Config{Seed: 1, Events: 17})
	if a.Len() < 17 {
		t.Fatalf("len = %d, want >= 17", a.Len())
	}
	// Revealing insertion may overshoot by at most one (the paired write).
	if a.Len() > 18 {
		t.Fatalf("len = %d, want <= 18", a.Len())
	}
}

// TestRandomCausalRevealingShape verifies the §5.2.1 shape on generated
// executions: every write w is immediately preceded in its session by a read
// r_w of the same object, r_w -vis-> w, and every other event's visibility
// to/from the pair agrees.
func TestRandomCausalRevealingShape(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := RandomCausal(Config{Seed: seed, Events: 24, Revealing: true})
		for j, e := range a.H {
			if !e.IsWrite() {
				continue
			}
			rw := -1
			for i := j - 1; i >= 0; i-- {
				if a.H[i].Replica == e.Replica {
					rw = i
					break
				}
			}
			if rw < 0 || !a.H[rw].IsRead() || a.H[rw].Object != e.Object {
				t.Fatalf("seed %d: write at %d lacks its revealing read", seed, j)
			}
			if !a.Vis(rw, j) {
				t.Fatalf("seed %d: r_w %d not visible to write %d", seed, rw, j)
			}
			for i := 0; i < a.Len(); i++ {
				if i == rw || i == j {
					continue
				}
				if i < rw && a.Vis(i, j) != a.Vis(i, rw) {
					t.Fatalf("seed %d: event %d: vis to write %d and r_w %d disagree", seed, i, j, rw)
				}
				if i > j && a.Vis(j, i) != a.Vis(rw, i) {
					t.Fatalf("seed %d: event %d sees exactly one of write %d / r_w %d", seed, i, j, rw)
				}
			}
		}
	}
}

func TestWitnessedConcurrencyIsOCC(t *testing.T) {
	for _, rounds := range []int{1, 2, 3, 5} {
		a := WitnessedConcurrency(rounds, true)
		if err := consistency.CheckOCC(a, spec.MVRTypes()); err != nil {
			t.Fatalf("rounds=%d: %v", rounds, err)
		}
	}
}

func TestWitnessedConcurrencyExposesConcurrency(t *testing.T) {
	a := WitnessedConcurrency(1, false)
	found := false
	for _, e := range a.H {
		if e.IsRead() && len(e.Rval.Values) >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("no multi-valued read generated")
	}
}

func TestMakeRevealingPreservesResponsesAndAddsReads(t *testing.T) {
	types := spec.MVRTypes()
	orig := WitnessedConcurrency(2, false)
	rev := MakeRevealing(orig, types)

	writes := 0
	for _, e := range orig.H {
		if e.IsWrite() {
			writes++
		}
	}
	if rev.Len() != orig.Len()+writes {
		t.Fatalf("revealing len = %d, want %d", rev.Len(), orig.Len()+writes)
	}
	if err := consistency.CheckCausal(rev, types); err != nil {
		t.Fatalf("revealing execution not causal: %v", err)
	}
	// Original events keep their responses, in per-replica order.
	for _, r := range orig.Replicas() {
		var origEvents, revEvents []model.Event
		for _, j := range orig.ProjectReplica(r) {
			origEvents = append(origEvents, orig.H[j])
		}
		for _, j := range rev.ProjectReplica(r) {
			revEvents = append(revEvents, rev.H[j])
		}
		// Filter the inserted reads out of rev by matching the original
		// subsequence.
		k := 0
		for _, e := range revEvents {
			if k < len(origEvents) && e.Object == origEvents[k].Object &&
				e.Op == origEvents[k].Op && e.Rval.Equal(origEvents[k].Rval) {
				k++
			}
		}
		if k != len(origEvents) {
			t.Fatalf("r%d: original history not a subsequence of revealing history (%d/%d)", r, k, len(origEvents))
		}
	}
}

func TestMakeRevealingMirrorsVisibility(t *testing.T) {
	types := spec.MVRTypes()
	orig := RandomCausal(Config{Seed: 5, Events: 16})
	rev := MakeRevealing(orig, types)
	// Every write's immediately preceding same-replica event is a read of
	// the same object with the mirrored visibility set.
	for j, e := range rev.H {
		if !e.IsWrite() {
			continue
		}
		rw := -1
		for i := j - 1; i >= 0; i-- {
			if rev.H[i].Replica == e.Replica {
				rw = i
				break
			}
		}
		if rw < 0 || !rev.H[rw].IsRead() || rev.H[rw].Object != e.Object {
			t.Fatalf("write at %d lacks its revealing read (found %d)", j, rw)
		}
		// r_w -vis-> w, and vis-in sets agree outside {r_w}.
		if !rev.Vis(rw, j) {
			t.Fatalf("r_w not visible to its write at %d", j)
		}
		for i := 0; i < rev.Len(); i++ {
			if i == rw || i == j {
				continue
			}
			if i < j && rev.Vis(i, j) != rev.Vis(i, rw) && i < rw {
				t.Fatalf("event %d: vis to write %d (%v) differs from vis to r_w %d (%v)",
					i, j, rev.Vis(i, j), rw, rev.Vis(i, rw))
			}
			// Forward mirror: anything seeing w sees r_w.
			if i > j && rev.Vis(j, i) && !rev.Vis(rw, i) {
				t.Fatalf("event %d sees write %d but not its r_w %d", i, j, rw)
			}
		}
	}
}

func TestBuilderUniqueValues(t *testing.T) {
	a := RandomCausal(Config{Seed: 9, Events: 40, WriteRatio: 0.9})
	seen := make(map[model.Value]bool)
	for _, e := range a.H {
		if e.IsWrite() {
			if seen[e.Op.Arg] {
				t.Fatalf("duplicate written value %q", e.Op.Arg)
			}
			seen[e.Op.Arg] = true
		}
	}
}

// TestQuickMVRReadIsMaximalAntichain re-verifies the Figure 1(b) semantics
// on generated causally consistent executions: a read's values come from
// visible writes that are pairwise concurrent (an antichain under
// visibility), and every visible same-object write not returned is
// dominated by a returned one.
func TestQuickMVRReadIsMaximalAntichain(t *testing.T) {
	f := func(seed int64) bool {
		a := RandomCausal(Config{Seed: seed, Events: 22})
		writerOf := make(map[model.Value]int)
		for j, e := range a.H {
			if e.IsWrite() {
				writerOf[e.Op.Arg] = j
			}
		}
		for j, e := range a.H {
			if !e.IsRead() {
				continue
			}
			returned := make([]int, 0, len(e.Rval.Values))
			for _, v := range e.Rval.Values {
				w, ok := writerOf[v]
				if !ok || !a.Vis(w, j) {
					return false // returned value not from a visible write
				}
				returned = append(returned, w)
			}
			for _, w1 := range returned {
				for _, w2 := range returned {
					if w1 != w2 && a.Vis(w1, w2) {
						return false // returned values not an antichain
					}
				}
			}
			for i := 0; i < j; i++ {
				w := a.H[i]
				if !w.IsWrite() || w.Object != e.Object || !a.Vis(i, j) || e.Rval.Contains(w.Op.Arg) {
					continue
				}
				dominated := false
				for _, r := range returned {
					if a.Vis(i, r) {
						dominated = true
						break
					}
				}
				if !dominated {
					return false // a visible write vanished without a dominator
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
