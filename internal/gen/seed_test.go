package gen

import "testing"

func TestSplitSeedDeterministic(t *testing.T) {
	if SplitSeed(42, 3) != SplitSeed(42, 3) {
		t.Fatal("SplitSeed is not a pure function")
	}
}

// TestSplitSeedStreamsDistinct checks the streams a root seed fans out into
// are pairwise distinct and differ from streams of neighboring roots — the
// property the parallel sweep and batch runners rely on for decorrelated
// per-cell RNGs.
func TestSplitSeedStreamsDistinct(t *testing.T) {
	seen := make(map[int64][2]int64)
	for root := int64(0); root < 8; root++ {
		for stream := 0; stream < 256; stream++ {
			s := SplitSeed(root, stream)
			if prev, dup := seen[s]; dup {
				t.Fatalf("collision: (%d,%d) and (%d,%d) both map to %d",
					root, stream, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{root, int64(stream)}
		}
	}
}

func TestSplitSeedDiffersFromRoot(t *testing.T) {
	for root := int64(0); root < 64; root++ {
		if SplitSeed(root, 0) == root {
			t.Fatalf("stream 0 of root %d equals the root itself", root)
		}
	}
}
