// Package abstract implements abstract executions (Definition 4): the
// client-observable half of the replicated data store model. An abstract
// execution is a pair (H, vis) of a global sequence of do events and an
// acyclic visibility relation, decoupled from the message-level
// happens-before relation of concrete executions.
//
// The package provides prefixes and prefix-closure (Definition 5),
// equivalence (per-replica history equality), operation contexts
// (Definition 7), and compliance of a concrete execution with an abstract
// one (Definition 9).
package abstract

import (
	"fmt"

	"repro/internal/execution"
	"repro/internal/model"
)

// Execution is an abstract execution A = (H, vis). H holds do events in
// their global order (H[i].Seq == i); vis is kept as, for each event, the
// bitset of its visibility predecessors.
type Execution struct {
	H   []model.Event
	vis []bitset
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitset) or(o bitset) {
	for i := range o {
		b[i] |= o[i]
	}
}
func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// New returns an empty abstract execution.
func New() *Execution { return &Execution{} }

// FromEvents builds an abstract execution from a sequence of do events,
// renumbering them 0..len-1, with an empty visibility relation.
func FromEvents(events []model.Event) *Execution {
	a := New()
	for _, e := range events {
		a.Append(e)
	}
	return a
}

// Len returns |H|.
func (a *Execution) Len() int { return len(a.H) }

// Append adds a do event at the end of H (renumbering its Seq) and returns
// its index.
func (a *Execution) Append(e model.Event) int {
	if !e.IsDo() {
		panic("abstract: only do events appear in abstract executions")
	}
	e.Seq = len(a.H)
	a.H = append(a.H, e)
	a.vis = append(a.vis, nil)
	return e.Seq
}

// SetRval overwrites the response of event j. Generators use it to assign
// the specification-determined response after the event's visibility edges
// are in place.
func (a *Execution) SetRval(j int, rval model.Response) { a.H[j].Rval = rval }

// AddVis records e_i -vis-> e_j. It requires i < j (condition (3) of
// Definition 4: visibility respects the order of H), which also keeps the
// relation acyclic by construction.
func (a *Execution) AddVis(i, j int) {
	if i >= j {
		panic(fmt.Sprintf("abstract: vis edge %d->%d violates H order", i, j))
	}
	if a.vis[j] == nil {
		a.vis[j] = newBitset(len(a.H))
	} else if len(a.vis[j])*64 < j+1 {
		grown := newBitset(len(a.H))
		copy(grown, a.vis[j])
		a.vis[j] = grown
	}
	a.vis[j].set(i)
}

// Vis reports e_i -vis-> e_j.
func (a *Execution) Vis(i, j int) bool {
	if i < 0 || j < 0 || j >= len(a.H) || i >= j {
		return false
	}
	if a.vis[j] == nil {
		return false
	}
	if i/64 >= len(a.vis[j]) {
		return false
	}
	return a.vis[j].get(i)
}

// VisPreds returns the indices of all visibility predecessors of e_j, in H
// order.
func (a *Execution) VisPreds(j int) []int {
	var out []int
	for i := 0; i < j; i++ {
		if a.Vis(i, j) {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks the conditions of Definition 4:
//
//	(1) session order: if e_i precedes e_j in H at the same replica, then
//	    e_i -vis-> e_j;
//	(2) session closure: if e_i -vis-> e_j and e_j precedes e_k in H at the
//	    same replica as e_j, then e_i -vis-> e_k;
//	(3) vis respects H order (guaranteed by AddVis, re-checked here).
func (a *Execution) Validate() error {
	lastAt := make(map[model.ReplicaID][]int)
	for j, e := range a.H {
		for _, i := range lastAt[e.Replica] {
			if !a.Vis(i, j) {
				return fmt.Errorf("abstract: session order violated: H[%d] and H[%d] both at r%d but no vis edge", i, j, e.Replica)
			}
		}
		lastAt[e.Replica] = append(lastAt[e.Replica], j)
	}
	// Condition (2): anything visible to an event is visible to later events
	// of the same session.
	for j := range a.H {
		for _, k := range lastAt[a.H[j].Replica] {
			if k <= j {
				continue
			}
			for i := 0; i < j; i++ {
				if a.Vis(i, j) && !a.Vis(i, k) {
					return fmt.Errorf("abstract: session closure violated: H[%d]-vis->H[%d], H[%d] later at r%d, but no H[%d]-vis->H[%d]",
						i, j, k, a.H[j].Replica, i, k)
				}
			}
		}
	}
	return nil
}

// IsTransitive reports whether vis is transitive — the defining condition of
// causal consistency (Definition 12).
func (a *Execution) IsTransitive() bool {
	for j := range a.H {
		for i := 0; i < j; i++ {
			if !a.Vis(i, j) {
				continue
			}
			for h := 0; h < i; h++ {
				if a.Vis(h, i) && !a.Vis(h, j) {
					return false
				}
			}
		}
	}
	return true
}

// TransitiveViolation returns a witness (h, i, j) with h-vis->i-vis->j but
// not h-vis->j, or ok=false if vis is transitive.
func (a *Execution) TransitiveViolation() (h, i, j int, ok bool) {
	for j := range a.H {
		for i := 0; i < j; i++ {
			if !a.Vis(i, j) {
				continue
			}
			for h := 0; h < i; h++ {
				if a.Vis(h, i) && !a.Vis(h, j) {
					return h, i, j, true
				}
			}
		}
	}
	return 0, 0, 0, false
}

// TransitiveClosure returns a copy of a whose visibility relation is the
// transitive closure of the original.
func (a *Execution) TransitiveClosure() *Execution {
	out := a.Clone()
	for j := range out.H {
		closure := newBitset(len(out.H))
		if out.vis[j] != nil {
			copy(closure, out.vis[j])
		}
		for i := 0; i < j; i++ {
			if closure.get(i) && out.vis[i] != nil {
				closure.or(out.vis[i])
			}
		}
		out.vis[j] = closure
	}
	return out
}

// Clone returns a deep copy.
func (a *Execution) Clone() *Execution {
	out := &Execution{H: make([]model.Event, len(a.H)), vis: make([]bitset, len(a.vis))}
	copy(out.H, a.H)
	for j, b := range a.vis {
		if b != nil {
			out.vis[j] = b.clone()
		}
	}
	return out
}

// Prefix returns the abstract execution A' = (H', vis') with H' the first n
// events of H and vis' = vis ∩ (H' × H') (Definition 5).
func (a *Execution) Prefix(n int) *Execution {
	if n > len(a.H) {
		n = len(a.H)
	}
	out := &Execution{H: make([]model.Event, n), vis: make([]bitset, n)}
	copy(out.H, a.H[:n])
	for j := 0; j < n; j++ {
		if a.vis[j] != nil {
			out.vis[j] = a.vis[j].clone()
		}
	}
	return out
}

// ProjectReplica returns H|R: the indices of events at replica r, in order.
func (a *Execution) ProjectReplica(r model.ReplicaID) []int {
	var out []int
	for j, e := range a.H {
		if e.Replica == r {
			out = append(out, j)
		}
	}
	return out
}

// ProjectObject returns H|o: the indices of events on object o, in order.
func (a *Execution) ProjectObject(o model.ObjectID) []int {
	var out []int
	for j, e := range a.H {
		if e.Object == o {
			out = append(out, j)
		}
	}
	return out
}

// Replicas returns the sorted set of replica IDs in H.
func (a *Execution) Replicas() []model.ReplicaID {
	seen := make(map[model.ReplicaID]bool)
	var max model.ReplicaID = -1
	for _, e := range a.H {
		seen[e.Replica] = true
		if e.Replica > max {
			max = e.Replica
		}
	}
	var out []model.ReplicaID
	for r := model.ReplicaID(0); r <= max; r++ {
		if seen[r] {
			out = append(out, r)
		}
	}
	return out
}

// Objects returns the set of object IDs in H, in first-appearance order.
func (a *Execution) Objects() []model.ObjectID {
	seen := make(map[model.ObjectID]bool)
	var out []model.ObjectID
	for _, e := range a.H {
		if !seen[e.Object] {
			seen[e.Object] = true
			out = append(out, e.Object)
		}
	}
	return out
}

// Equivalent reports A ≡ A': for every replica R, H|R = H'|R (same events
// with the same operations and responses, in the same per-replica order).
func (a *Execution) Equivalent(b *Execution) bool {
	if len(a.H) != len(b.H) {
		return false
	}
	replicas := a.Replicas()
	if len(replicas) != len(b.Replicas()) {
		return false
	}
	for _, r := range replicas {
		pa := a.ProjectReplica(r)
		pb := b.ProjectReplica(r)
		if len(pa) != len(pb) {
			return false
		}
		for i := range pa {
			ea, eb := a.H[pa[i]], b.H[pb[i]]
			if ea.Object != eb.Object || ea.Op != eb.Op || !ea.Rval.Equal(eb.Rval) {
				return false
			}
		}
	}
	return true
}

// String renders H with the visibility predecessors of each event.
func (a *Execution) String() string {
	out := ""
	for j, e := range a.H {
		out += fmt.Sprintf("%3d  %-40s vis<-%v\n", j, e.String(), a.VisPreds(j))
	}
	return out
}

// Context is the operation context ctxt(A, e) of Definition 7: the visible
// prior same-object events plus e itself, with visibility restricted to them.
type Context struct {
	// Events holds the context events in H order; the final element is e.
	Events []model.Event
	// vis among context events, by position in Events.
	vis func(i, j int) bool
	// Index maps positions in Events back to indices in the parent H.
	Index []int
}

// NewContext builds an operation context directly from events and a
// visibility predicate over positions in events, for evaluators that work on
// candidate visibility assignments without materializing a full abstract
// execution. The final event is the target.
func NewContext(events []model.Event, vis func(i, j int) bool) *Context {
	return &Context{Events: events, vis: vis}
}

// Vis reports visibility between context positions i and j.
func (c *Context) Vis(i, j int) bool { return c.vis(i, j) }

// Target returns e, the event the context belongs to.
func (c *Context) Target() model.Event { return c.Events[len(c.Events)-1] }

// Prior returns the context events other than e itself.
func (c *Context) Prior() []model.Event { return c.Events[:len(c.Events)-1] }

// Context computes ctxt(A, e_j): V_e = {e' : e' -vis-> e_j and
// obj(e') = obj(e_j)} ∪ {e_j}.
func (a *Execution) Context(j int) *Context {
	target := a.H[j]
	var idx []int
	for i := 0; i < j; i++ {
		if a.Vis(i, j) && a.H[i].Object == target.Object {
			idx = append(idx, i)
		}
	}
	idx = append(idx, j)
	events := make([]model.Event, len(idx))
	for p, i := range idx {
		events[p] = a.H[i]
	}
	ctx := &Context{Events: events, Index: idx}
	ctx.vis = func(p, q int) bool {
		if p < 0 || q < 0 || p >= len(idx) || q >= len(idx) {
			return false
		}
		return a.Vis(idx[p], idx[q])
	}
	return ctx
}

// Complies checks Definition 9: concrete execution α complies with A iff for
// every replica R, H|R equals α|R^do event for event (object, operation, and
// response).
func Complies(concrete *execution.Execution, a *Execution) error {
	replicas := make(map[model.ReplicaID]bool)
	for _, e := range concrete.Events {
		replicas[e.Replica] = true
	}
	for _, e := range a.H {
		replicas[e.Replica] = true
	}
	for r := range replicas {
		ha := a.ProjectReplica(r)
		hc := concrete.ProjectDoReplica(r)
		if len(ha) != len(hc) {
			return fmt.Errorf("abstract: compliance: r%d has %d abstract vs %d concrete do events", r, len(ha), len(hc))
		}
		for i := range ha {
			ea, ec := a.H[ha[i]], hc[i]
			if ea.Object != ec.Object || ea.Op != ec.Op {
				return fmt.Errorf("abstract: compliance: r%d op %d differs: abstract %s.%s vs concrete %s.%s",
					r, i, ea.Object, ea.Op, ec.Object, ec.Op)
			}
			if !ea.Rval.Equal(ec.Rval) {
				return fmt.Errorf("abstract: compliance: r%d op %d (%s.%s) responses differ: abstract %s vs concrete %s",
					r, i, ea.Object, ea.Op, ea.Rval, ec.Rval)
			}
		}
	}
	return nil
}
