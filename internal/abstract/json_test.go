package abstract

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestJSONRoundTrip(t *testing.T) {
	a := New()
	a.Append(model.DoEvent(0, "x", model.Write("a"), model.OKResponse()))
	a.Append(model.DoEvent(1, "s", model.Add("e"), model.OKResponse()))
	a.Append(model.DoEvent(1, "s", model.Remove("e"), model.OKResponse()))
	a.Append(model.DoEvent(2, "c", model.Inc(-3), model.OKResponse()))
	a.Append(model.DoEvent(2, "c", model.Read(), model.CountResponse(-3)))
	a.Append(model.DoEvent(0, "x", model.Read(), model.ReadResponse([]model.Value{"a"})))
	a.AddVis(1, 2)
	a.AddVis(3, 4)
	a.AddVis(0, 5)

	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalExecution(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equivalent(a) {
		t.Fatalf("round trip lost events:\n%s\nvs\n%s", a, back)
	}
	for j := 0; j < a.Len(); j++ {
		for i := 0; i < j; i++ {
			if a.Vis(i, j) != back.Vis(i, j) {
				t.Fatalf("vis(%d,%d) changed", i, j)
			}
		}
	}
}

func TestJSONEmptyReadDistinctFromOK(t *testing.T) {
	a := New()
	a.Append(model.DoEvent(0, "x", model.Read(), model.ReadResponse(nil)))
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalExecution(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.H[0].Rval.OK || back.H[0].Rval.Values == nil {
		t.Fatalf("empty read decoded as %s", back.H[0].Rval)
	}
}

func TestJSONUnknownOpRejected(t *testing.T) {
	_, err := UnmarshalExecution([]byte(`{"events":[{"replica":0,"object":"x","op":"frob"}]}`))
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("err = %v", err)
	}
}

func TestJSONBadVisRejected(t *testing.T) {
	_, err := UnmarshalExecution([]byte(`{"events":[{"replica":0,"object":"x","op":"read","vis":[5]}]}`))
	if err == nil {
		t.Fatal("expected out-of-range vis rejection")
	}
	_, err = UnmarshalExecution([]byte(`{"events":[
		{"replica":0,"object":"x","op":"write","arg":"a","ok":true},
		{"replica":0,"object":"x","op":"read","vis":[-1]}]}`))
	if err == nil {
		t.Fatal("expected negative vis rejection")
	}
}

func TestJSONMalformedInputRejected(t *testing.T) {
	if _, err := UnmarshalExecution([]byte(`{`)); err == nil {
		t.Fatal("expected parse error")
	}
}
