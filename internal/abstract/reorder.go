package abstract

import (
	"fmt"

	"repro/internal/model"
)

// Reorder returns the abstract execution whose H lists the same events in
// the order given by perm (perm[k] = index into the current H of the event
// placed at position k), with the visibility relation carried along.
//
// A reordering is valid iff it preserves per-replica order and keeps every
// visibility edge pointing forward (Definition 4 condition (3)). Valid
// reorderings produce executions EQUIVALENT to the original (Definition 9's
// per-replica projections are unchanged), which is the formal content of
// "consistency models are closed under equivalence" (§3.2): checkers must
// return the same verdicts on both.
func (a *Execution) Reorder(perm []int) (*Execution, error) {
	if len(perm) != a.Len() {
		return nil, fmt.Errorf("abstract: permutation has %d entries for %d events", len(perm), a.Len())
	}
	pos := make([]int, a.Len()) // pos[old index] = new position
	seen := make([]bool, a.Len())
	for newIdx, oldIdx := range perm {
		if oldIdx < 0 || oldIdx >= a.Len() || seen[oldIdx] {
			return nil, fmt.Errorf("abstract: invalid permutation entry %d", oldIdx)
		}
		seen[oldIdx] = true
		pos[oldIdx] = newIdx
	}
	// Per-replica order preserved.
	lastAt := make(map[model.ReplicaID]int)
	for newIdx, oldIdx := range perm {
		r := a.H[oldIdx].Replica
		if prev, ok := lastAt[r]; ok {
			prevOld := perm[prev]
			// prevOld must precede oldIdx in the ORIGINAL order too.
			if prevOld > oldIdx {
				return nil, fmt.Errorf("abstract: permutation reverses session order at r%d", r)
			}
		}
		lastAt[r] = newIdx
	}
	// Vis edges stay forward.
	for j := 0; j < a.Len(); j++ {
		for _, i := range a.VisPreds(j) {
			if pos[i] >= pos[j] {
				return nil, fmt.Errorf("abstract: permutation reverses vis edge %d->%d", i, j)
			}
		}
	}
	out := New()
	for _, oldIdx := range perm {
		out.Append(a.H[oldIdx])
	}
	for j := 0; j < a.Len(); j++ {
		for _, i := range a.VisPreds(j) {
			out.AddVis(pos[i], pos[j])
		}
	}
	return out, nil
}

// TopologicalReorders enumerates up to limit valid reorderings (linear
// extensions of session-order ∪ vis), including the identity. Checkers'
// closure under equivalence is tested against these.
func (a *Execution) TopologicalReorders(limit int) [][]int {
	n := a.Len()
	// preds[j] = session + vis predecessors.
	preds := make([][]int, n)
	lastAt := make(map[model.ReplicaID]int)
	for j := 0; j < n; j++ {
		preds[j] = append(preds[j], a.VisPreds(j)...)
		if prev, ok := lastAt[a.H[j].Replica]; ok {
			preds[j] = append(preds[j], prev)
		}
		lastAt[a.H[j].Replica] = j
	}
	var out [][]int
	used := make([]bool, n)
	placed := make([]int, 0, n)
	var rec func()
	rec = func() {
		if len(out) >= limit {
			return
		}
		if len(placed) == n {
			perm := make([]int, n)
			copy(perm, placed)
			out = append(out, perm)
			return
		}
		for cand := 0; cand < n; cand++ {
			if used[cand] {
				continue
			}
			ready := true
			for _, p := range preds[cand] {
				if !used[p] {
					ready = false
					break
				}
			}
			if ready {
				used[cand] = true
				placed = append(placed, cand)
				rec()
				placed = placed[:len(placed)-1]
				used[cand] = false
				if len(out) >= limit {
					return
				}
			}
		}
	}
	rec()
	return out
}
