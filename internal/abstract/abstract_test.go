package abstract

import (
	"testing"

	"repro/internal/execution"
	"repro/internal/model"
)

// threeEvents builds w0@r0, w1@r1, read@r0 with edges w0->read (session) and
// w1->read.
func threeEvents(t *testing.T) *Execution {
	t.Helper()
	a := New()
	a.Append(model.DoEvent(0, "x", model.Write("a"), model.OKResponse()))
	a.Append(model.DoEvent(1, "x", model.Write("b"), model.OKResponse()))
	a.Append(model.DoEvent(0, "x", model.Read(), model.ReadResponse([]model.Value{"a", "b"})))
	a.AddVis(0, 2)
	a.AddVis(1, 2)
	return a
}

func TestAppendRejectsNonDo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-do event")
		}
	}()
	New().Append(model.SendEvent(0, 1))
}

func TestAddVisRejectsBackwardEdge(t *testing.T) {
	a := threeEvents(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backward edge")
		}
	}()
	a.AddVis(2, 1)
}

func TestVisAndPreds(t *testing.T) {
	a := threeEvents(t)
	if !a.Vis(0, 2) || !a.Vis(1, 2) || a.Vis(0, 1) {
		t.Fatal("vis edges wrong")
	}
	if a.Vis(2, 0) || a.Vis(-1, 2) || a.Vis(0, 99) {
		t.Fatal("out-of-range vis should be false")
	}
	preds := a.VisPreds(2)
	if len(preds) != 2 || preds[0] != 0 || preds[1] != 1 {
		t.Fatalf("preds = %v", preds)
	}
}

func TestValidateSessionOrder(t *testing.T) {
	a := threeEvents(t)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Remove the session edge by rebuilding without it.
	b := New()
	b.Append(a.H[0])
	b.Append(a.H[2]) // same replica, no edge
	if err := b.Validate(); err == nil {
		t.Fatal("expected session order violation")
	}
}

func TestValidateSessionClosure(t *testing.T) {
	// e0@r1 -vis-> e1@r0, then e2@r0 without e0 -vis-> e2.
	a := New()
	a.Append(model.DoEvent(1, "x", model.Write("a"), model.OKResponse()))
	a.Append(model.DoEvent(0, "x", model.Read(), model.ReadResponse([]model.Value{"a"})))
	a.Append(model.DoEvent(0, "x", model.Read(), model.ReadResponse(nil)))
	a.AddVis(0, 1)
	a.AddVis(1, 2) // session
	if err := a.Validate(); err == nil {
		t.Fatal("expected session closure violation")
	}
	a.AddVis(0, 2)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransitivity(t *testing.T) {
	a := New()
	for i := 0; i < 3; i++ {
		a.Append(model.DoEvent(model.ReplicaID(i), "x", model.Write(model.Value(rune('a'+i))), model.OKResponse()))
	}
	a.AddVis(0, 1)
	a.AddVis(1, 2)
	if a.IsTransitive() {
		t.Fatal("missing 0->2 should break transitivity")
	}
	h, i, j, bad := a.TransitiveViolation()
	if !bad || h != 0 || i != 1 || j != 2 {
		t.Fatalf("violation = (%d,%d,%d,%v)", h, i, j, bad)
	}
	closed := a.TransitiveClosure()
	if !closed.IsTransitive() || !closed.Vis(0, 2) {
		t.Fatal("closure did not close")
	}
	if a.Vis(0, 2) {
		t.Fatal("closure mutated the original")
	}
}

func TestPrefix(t *testing.T) {
	a := threeEvents(t)
	p := a.Prefix(2)
	if p.Len() != 2 || p.Vis(0, 1) {
		t.Fatalf("prefix wrong: len=%d", p.Len())
	}
	if got := a.Prefix(99).Len(); got != 3 {
		t.Fatalf("over-long prefix has %d events", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := threeEvents(t)
	c := a.Clone()
	c.AddVis(0, 1)
	if a.Vis(0, 1) {
		t.Fatal("clone shares visibility storage")
	}
}

func TestProjections(t *testing.T) {
	a := threeEvents(t)
	if got := a.ProjectReplica(0); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("r0 projection = %v", got)
	}
	if got := a.ProjectObject("x"); len(got) != 3 {
		t.Fatalf("x projection = %v", got)
	}
	if got := a.Objects(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("objects = %v", got)
	}
	if got := a.Replicas(); len(got) != 2 {
		t.Fatalf("replicas = %v", got)
	}
}

func TestEquivalence(t *testing.T) {
	a := threeEvents(t)
	// Same per-replica histories, different interleaving: equivalent.
	b := New()
	b.Append(a.H[1])
	b.Append(a.H[0])
	b.Append(a.H[2])
	if !a.Equivalent(b) {
		t.Fatal("reordered interleaving should be equivalent")
	}
	// Different response: not equivalent.
	c := a.Clone()
	c.SetRval(2, model.ReadResponse([]model.Value{"a"}))
	if a.Equivalent(c) {
		t.Fatal("different responses should not be equivalent")
	}
	// Different length: not equivalent.
	if a.Equivalent(a.Prefix(2)) {
		t.Fatal("prefix should not be equivalent")
	}
}

func TestContext(t *testing.T) {
	a := New()
	a.Append(model.DoEvent(0, "x", model.Write("a"), model.OKResponse()))
	a.Append(model.DoEvent(0, "y", model.Write("b"), model.OKResponse()))
	a.Append(model.DoEvent(0, "x", model.Read(), model.ReadResponse([]model.Value{"a"})))
	a.AddVis(0, 1)
	a.AddVis(0, 2)
	a.AddVis(1, 2)
	ctx := a.Context(2)
	// Context contains only the same-object visible event plus the target.
	if len(ctx.Events) != 2 || ctx.Events[0].Object != "x" || !ctx.Target().IsRead() {
		t.Fatalf("context events = %v", ctx.Events)
	}
	if len(ctx.Prior()) != 1 {
		t.Fatalf("prior = %v", ctx.Prior())
	}
	if !ctx.Vis(0, 1) {
		t.Fatal("context lost the vis edge to the target")
	}
	if ctx.Vis(1, 0) || ctx.Vis(-1, 0) || ctx.Vis(0, 5) {
		t.Fatal("context vis out-of-range handling wrong")
	}
}

func TestCompliesMatches(t *testing.T) {
	a := threeEvents(t)
	x := execution.New()
	x.AppendDo(0, "x", model.Write("a"), model.OKResponse())
	x.AppendSend(0, []byte{1})
	x.AppendDo(1, "x", model.Write("b"), model.OKResponse())
	x.AppendReceive(0, 0) // noise: only do events matter for compliance
	x.AppendDo(0, "x", model.Read(), model.ReadResponse([]model.Value{"a", "b"}))
	if err := Complies(x, a); err != nil {
		t.Fatal(err)
	}
}

func TestCompliesDetectsResponseMismatch(t *testing.T) {
	a := threeEvents(t)
	x := execution.New()
	x.AppendDo(0, "x", model.Write("a"), model.OKResponse())
	x.AppendDo(1, "x", model.Write("b"), model.OKResponse())
	x.AppendDo(0, "x", model.Read(), model.ReadResponse([]model.Value{"a"}))
	if err := Complies(x, a); err == nil {
		t.Fatal("expected response mismatch")
	}
}

func TestCompliesDetectsMissingEvents(t *testing.T) {
	a := threeEvents(t)
	x := execution.New()
	x.AppendDo(0, "x", model.Write("a"), model.OKResponse())
	if err := Complies(x, a); err == nil {
		t.Fatal("expected history length mismatch")
	}
}

func TestCompliesDetectsOperationMismatch(t *testing.T) {
	a := threeEvents(t)
	x := execution.New()
	x.AppendDo(0, "x", model.Write("a"), model.OKResponse())
	x.AppendDo(1, "y", model.Write("b"), model.OKResponse()) // wrong object
	x.AppendDo(0, "x", model.Read(), model.ReadResponse([]model.Value{"a", "b"}))
	if err := Complies(x, a); err == nil {
		t.Fatal("expected operation mismatch")
	}
}

func TestFromEventsRenumbers(t *testing.T) {
	events := []model.Event{
		{Seq: 42, Replica: 0, Act: model.ActDo, Object: "x", Op: model.Write("a"), Rval: model.OKResponse()},
		{Seq: 7, Replica: 1, Act: model.ActDo, Object: "x", Op: model.Read(), Rval: model.ReadResponse(nil)},
	}
	a := FromEvents(events)
	if a.H[0].Seq != 0 || a.H[1].Seq != 1 {
		t.Fatalf("events not renumbered: %v", a.H)
	}
}

func TestStringRendering(t *testing.T) {
	if s := threeEvents(t).String(); len(s) == 0 {
		t.Fatal("empty rendering")
	}
}
