package abstract

import (
	"encoding/json"
	"fmt"

	"repro/internal/model"
)

// The JSON format for abstract executions, used by cmd/occheck and the
// auditor example: an ordered list of events, each carrying its replica,
// object, operation, response, and visibility predecessor indices.
//
//	{"events": [
//	  {"replica": 0, "object": "x", "op": "write", "arg": "a", "ok": true},
//	  {"replica": 1, "object": "x", "op": "read", "values": ["a"], "vis": [0]}
//	]}

type jsonEvent struct {
	Replica int      `json:"replica"`
	Object  string   `json:"object"`
	Op      string   `json:"op"`
	Arg     string   `json:"arg,omitempty"`
	Delta   int64    `json:"delta,omitempty"`
	OK      bool     `json:"ok,omitempty"`
	Values  []string `json:"values,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Vis     []int    `json:"vis,omitempty"`
}

type jsonExecution struct {
	Events []jsonEvent `json:"events"`
}

// MarshalJSON renders the execution in the documented format.
func (a *Execution) MarshalJSON() ([]byte, error) {
	out := jsonExecution{Events: make([]jsonEvent, 0, len(a.H))}
	for j, e := range a.H {
		je := jsonEvent{
			Replica: int(e.Replica),
			Object:  string(e.Object),
			Op:      e.Op.Kind.String(),
			Arg:     string(e.Op.Arg),
			Delta:   e.Op.Delta,
			OK:      e.Rval.OK,
			Count:   e.Rval.Count,
			Vis:     a.VisPreds(j),
		}
		if e.Rval.Values != nil {
			je.Values = make([]string, len(e.Rval.Values))
			for i, v := range e.Rval.Values {
				je.Values[i] = string(v)
			}
		}
		out.Events = append(out.Events, je)
	}
	return json.Marshal(out)
}

// UnmarshalExecution parses the documented JSON format.
func UnmarshalExecution(data []byte) (*Execution, error) {
	var in jsonExecution
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("abstract: parse execution: %w", err)
	}
	a := New()
	for idx, je := range in.Events {
		kind, err := parseOpKind(je.Op)
		if err != nil {
			return nil, fmt.Errorf("abstract: event %d: %w", idx, err)
		}
		e := model.Event{
			Replica: model.ReplicaID(je.Replica),
			Act:     model.ActDo,
			Object:  model.ObjectID(je.Object),
			Op:      model.Operation{Kind: kind, Arg: model.Value(je.Arg), Delta: je.Delta},
		}
		switch {
		case je.OK:
			e.Rval = model.OKResponse()
		case je.Values != nil:
			values := make([]model.Value, len(je.Values))
			for i, v := range je.Values {
				values[i] = model.Value(v)
			}
			e.Rval = model.ReadResponse(values)
		case kind == model.OpRead && je.Count != 0:
			e.Rval = model.CountResponse(je.Count)
		case kind == model.OpRead:
			e.Rval = model.ReadResponse(nil)
		default:
			e.Rval = model.OKResponse()
		}
		j := a.Append(e)
		for _, i := range je.Vis {
			if i < 0 || i >= j {
				return nil, fmt.Errorf("abstract: event %d: vis predecessor %d out of range", idx, i)
			}
			a.AddVis(i, j)
		}
	}
	return a, nil
}

func parseOpKind(s string) (model.OpKind, error) {
	switch s {
	case "read":
		return model.OpRead, nil
	case "write":
		return model.OpWrite, nil
	case "add":
		return model.OpAdd, nil
	case "remove":
		return model.OpRemove, nil
	case "inc":
		return model.OpInc, nil
	default:
		return 0, fmt.Errorf("unknown op %q", s)
	}
}
