package abstract

import "testing"

// FuzzUnmarshalExecution ensures arbitrary JSON never panics the parser, and
// that whatever parses survives re-marshalling.
func FuzzUnmarshalExecution(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"events":[{"replica":0,"object":"x","op":"write","arg":"a","ok":true}]}`))
	f.Add([]byte(`{"events":[{"op":"read","vis":[0]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := UnmarshalExecution(data)
		if err != nil {
			return
		}
		if _, err := a.MarshalJSON(); err != nil {
			t.Fatalf("parsed execution failed to marshal: %v", err)
		}
		_ = a.Validate()
	})
}
