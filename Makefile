GO ?= go

.PHONY: build test verify bench figures json ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The PR gate: static checks plus the full suite under the race detector,
# which exercises the parallel explorer, the sharded visited-set, and the
# sweep/batch cell runners under contention.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$'

figures:
	$(GO) run ./cmd/figures -all

# Machine-readable experiment artifacts, tracked in git so result drift
# shows up in review.
json:
	$(GO) run ./cmd/figures -all -seed 1 -parallel 1 -json > BENCH_FIGURES.json
	$(GO) run ./cmd/msgbound -sweep grid -seed 1 -parallel 1 -json > BENCH_MSGBOUND.json

# What CI runs: the verify gate, then regenerate the tracked JSON artifacts
# and fail if they drifted from what the commit claims.
ci: verify json
	git diff --exit-code BENCH_FIGURES.json BENCH_MSGBOUND.json
