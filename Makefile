GO ?= go

.PHONY: build test verify bench figures json wirebench fuzz chaos chaos-search durability membership livecheck shard ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The PR gate: static checks plus the full suite under the race detector,
# which exercises the parallel explorer, the sharded visited-set, and the
# sweep/batch cell runners under contention.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$'

figures:
	$(GO) run ./cmd/figures -all

# Machine-readable experiment artifacts, tracked in git so result drift
# shows up in review.
json:
	$(GO) run ./cmd/figures -all -seed 1 -parallel 1 -json > BENCH_FIGURES.json
	$(GO) run ./cmd/msgbound -sweep grid -seed 1 -parallel 1 -json > BENCH_MSGBOUND.json
	$(GO) run ./cmd/chaoshunt -store causal -seed 1 -budget 48 -objective all -parallel 1 -json > BENCH_CHAOS.json
	$(GO) run ./cmd/chaoshunt -store gsp -seed 1 -budget 48 -objective all -parallel 1 -json >> BENCH_CHAOS.json
	$(GO) run ./cmd/loadgen -wirebench -store causal -seed 1 -ops 200 -json > BENCH_WIRE.json
	$(GO) run ./cmd/loadgen -syncbench -store causal -seed 1 -ops 200 -json > BENCH_SYNC.json
	$(GO) run ./cmd/loadgen -livebench -seed 1 -ops 800 -json > BENCH_LIVECHECK.json
	$(GO) run ./cmd/loadgen -shardbench -seed 1 -keys 1000000 -ops 200000 -shards 8 -json > BENCH_SHARD.json

# Human-readable wire-codec comparison: the deterministic encode-path table
# (what BENCH_WIRE.json tracks) plus a live loopback TCP run of both codecs
# with wall-clock throughput and latency.
wirebench:
	$(GO) run ./cmd/loadgen -wirebench -store causal -seed 1 -ops 200

# Brief coverage-guided runs of every fuzz target (decoders and replica
# Receive paths), on top of the checked-in seed corpora the ordinary test
# run already replays.
fuzz:
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzReadFrame -fuzztime 10s
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzReader -fuzztime 10s
	$(GO) test ./internal/abstract -run '^$$' -fuzz FuzzUnmarshalExecution -fuzztime 10s
	$(GO) test ./internal/durable -run '^$$' -fuzz FuzzRecoverTail -fuzztime 10s
	$(GO) test ./internal/cluster -run '^$$' -fuzz FuzzDecodeBatch -fuzztime 10s
	$(GO) test ./internal/cluster -run '^$$' -fuzz FuzzDecodeEventBinary -fuzztime 10s
	$(GO) test ./internal/cluster -run '^$$' -fuzz FuzzDecodeDigest -fuzztime 10s
	$(GO) test ./internal/cluster -run '^$$' -fuzz FuzzDecompressFrame -fuzztime 10s

# The durability battery: the on-disk journal's torn-tail/compaction
# regression suite, the disk-backed supervisor and chaos runs, and the
# kill -9 harness (a real served child process SIGKILL'd mid-load and
# restarted on the same -data-dir).
durability:
	$(GO) test ./internal/durable -count=1
	$(GO) test -race ./cmd/served -run 'Kill9|ParsePeers|WriteJSON|AdminServer' -count=1
	$(GO) test -race ./cmd/loadgen -run 'TestRunChaosDiskBacked' -count=1

# The fault-injection sweep: every registered store through seeded
# partition/crash/link-fault schedules in the simulator, then the TCP
# cluster and loadgen chaos mode under the race detector.
chaos:
	$(GO) test ./internal/fault -count=1
	$(GO) test ./internal/store/storetest -run 'TestRegisteredStoresConform/.*/Chaos' -count=1
	$(GO) test -race ./internal/cluster ./cmd/loadgen -run 'Chaos|Supervisor|Restart' -count=1

# The dynamic-membership battery: the Merkle forest and view unit suites,
# the join/leave/rejoin protocol tests (anti-entropy catch-up, divergence
# refusal, codec negotiation during join), churned fault schedules through
# the supervisor, the durable tree checkpoint round trip, and the kill -9
# mid-sync harness (a served child joining via -join, SIGKILL'd mid-pull,
# restarted on the same -data-dir).
membership:
	$(GO) test -race ./internal/membership -count=1
	$(GO) test -race ./internal/cluster -run 'Join|Rejoin|Leave|Churn|SyncCost|Member' -count=1
	$(GO) test -race ./internal/fault -run 'Churn' -count=1
	$(GO) test -race ./internal/durable -run 'Tree' -count=1
	$(GO) test -race ./cmd/served -run 'Kill9MidSyncJoin|ParseTopology' -count=1
	$(GO) test -race ./cmd/loadgen -run 'Syncbench' -count=1

# The online-checker battery: the streaming checker's unit and equivalence
# suites (every registered store against the post-run audit on seeded chaos
# schedules), the TCP violation-during-run acceptance test, the tapped
# chaos pipeline, and the served /livecheck endpoint — all under the race
# detector, since the checker is fed concurrently by every node's event
# loop.
livecheck:
	$(GO) test -race ./internal/livecheck -count=1
	$(GO) test -race ./internal/cluster -run 'LiveChecker|MergeHistoriesRejectsDuplicateSend|BuildAuditFrontierless' -count=1
	$(GO) test -race ./cmd/loadgen -run 'LiveAudit|Livebench|LatCell' -count=1
	$(GO) test -race ./cmd/served -run 'AdminServer' -count=1

# The sharding battery: keyspace routing and the per-shard event loops —
# the router and sharded-cluster convergence/audit suites, the shard-count
# hello negotiation, the per-shard livecheck set, the group-commit fsync
# coordinator, the sharded conformance leg of every registered store, the
# pool and compression regression tests that rode the sharding PR, and the
# kill -9 mid-group-commit harness — all under the race detector, since
# shards share the node's transport and fsync rounds.
shard:
	$(GO) test -race ./internal/cluster -run 'Shard|Pool|Compress' -count=1
	$(GO) test -race ./internal/livecheck -run 'ShardSet' -count=1
	$(GO) test -race ./internal/durable -run 'GroupCommit|CompactCrash' -count=1
	$(GO) test -race ./internal/store/storetest -run 'TestRegisteredStoresConform/.*/ShardedCluster' -count=1
	$(GO) test -race ./cmd/served -run 'Kill9ShardedGroupCommit' -count=1

# The adversarial chaos search: a small-budget hunt per objective against
# the default store, with each best schedule re-validated on the real TCP
# cluster. The tracked pipeline rows come from `make json` instead (no
# -validate there: validation counts are wall-clock and nondeterministic).
chaos-search:
	$(GO) test ./internal/chaossearch ./cmd/chaoshunt -count=1
	$(GO) run ./cmd/chaoshunt -store causal -seed 1 -budget 24 -objective all -validate

# What CI runs: the verify gate (which includes the chaos batteries), then
# regenerate the tracked JSON artifacts and fail if they drifted from what
# the commit claims.
ci: verify chaos chaos-search durability membership livecheck shard json
	git diff --exit-code BENCH_FIGURES.json BENCH_MSGBOUND.json BENCH_CHAOS.json BENCH_WIRE.json BENCH_SYNC.json BENCH_LIVECHECK.json BENCH_SHARD.json
